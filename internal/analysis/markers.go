package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Marker grammar (see DESIGN.md §9):
//
//	//repro:hotpath        — on a function's doc comment: the function and
//	                         every same-module function it (statically)
//	                         calls must be allocation-free. Before the
//	                         package clause: applies to every function in
//	                         that file.
//	//repro:deterministic  — same placement rules; the reachable code must
//	                         not consult wall-clock time, global RNG, the
//	                         environment, or unsorted map iteration.
//	//repro:allow <reason> — on (or directly above) a flagged line:
//	                         suppresses diagnostics on that line. The
//	                         reason is mandatory; the driver counts and
//	                         reports every allowance it uses, and a stale
//	                         allowance (suppressing nothing) is itself a
//	                         diagnostic.
const (
	markerPrefix      = "//repro:"
	markerHotpath     = "hotpath"
	markerDeterminism = "deterministic"
	markerAllow       = "allow"
)

// FuncInfo is the per-function record the analyzers share: declaration,
// owning package, and which contracts the function is a root of.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Hotpath       bool
	Deterministic bool
}

// allowMark is one //repro:allow comment. It suppresses diagnostics on
// its own line and on the line directly below (so it works both as a
// trailing comment and as a comment above the statement).
type allowMark struct {
	Pos    token.Position
	Reason string
	Used   int
}

type markerSet struct {
	funcs map[*types.Func]*FuncInfo
	// decls indexes every function declaration, marked or not, for
	// call-graph body lookup.
	decls map[*types.Func]*FuncInfo
	// allows maps filename → line → mark.
	allows map[string]map[int]*allowMark
	// order keeps allows in file/line order for stable reporting.
	order []*allowMark
	// diags holds marker-grammar problems (unknown directive, missing
	// reason, misplaced marker).
	diags []Diagnostic
}

func collectMarkers(prog *Program) *markerSet {
	ms := &markerSet{
		funcs:  make(map[*types.Func]*FuncInfo),
		decls:  make(map[*types.Func]*FuncInfo),
		allows: make(map[string]map[int]*allowMark),
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ms.collectFile(prog, pkg, file)
		}
	}
	return ms
}

func (ms *markerSet) collectFile(prog *Program, pkg *Package, file *ast.File) {
	// Index doc comments so directives can be classified by placement.
	funcDocs := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocs[fd.Doc] = fd
		}
	}

	fileHot, fileDet := false, false
	for _, group := range file.Comments {
		fileLevel := group.End() < file.Package
		target := funcDocs[group]
		for _, c := range group.List {
			directive, arg, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			switch directive {
			case markerHotpath, markerDeterminism:
				switch {
				case target != nil:
					fi := ms.funcInfo(pkg, target)
					if directive == markerHotpath {
						fi.Hotpath = true
					} else {
						fi.Deterministic = true
					}
				case fileLevel:
					if directive == markerHotpath {
						fileHot = true
					} else {
						fileDet = true
					}
				default:
					ms.diags = append(ms.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "markers",
						Message:  "//repro:" + directive + " must be on a function's doc comment or before the package clause",
					})
				}
			case markerAllow:
				if arg == "" {
					ms.diags = append(ms.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "markers",
						Message:  "//repro:allow requires a reason",
					})
					continue
				}
				mark := &allowMark{Pos: pos, Reason: arg}
				byLine := ms.allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*allowMark)
					ms.allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = mark
				ms.order = append(ms.order, mark)
			default:
				ms.diags = append(ms.diags, Diagnostic{
					Pos:      pos,
					Analyzer: "markers",
					Message:  "unknown directive //repro:" + directive,
				})
			}
		}
	}

	if fileHot || fileDet {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fi := ms.funcInfo(pkg, fd)
			fi.Hotpath = fi.Hotpath || fileHot
			fi.Deterministic = fi.Deterministic || fileDet
		}
	}

	// Register every declaration for call-graph lookup.
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			ms.funcInfo(pkg, fd)
		}
	}
}

func (ms *markerSet) funcInfo(pkg *Package, decl *ast.FuncDecl) *FuncInfo {
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return &FuncInfo{Decl: decl, Pkg: pkg}
	}
	if fi, ok := ms.decls[obj]; ok {
		return fi
	}
	fi := &FuncInfo{Obj: obj, Decl: decl, Pkg: pkg}
	ms.decls[obj] = fi
	ms.funcs[obj] = fi
	return fi
}

// parseDirective splits "//repro:word rest" into (word, rest, true).
func parseDirective(text string) (directive, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, markerPrefix)
	if !found {
		return "", "", false
	}
	directive, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(directive), strings.TrimSpace(arg), true
}

// allowFor returns the allowance covering a diagnostic at pos: a
// //repro:allow on the same line or on the line directly above.
func (ms *markerSet) allowFor(pos token.Position) *allowMark {
	byLine := ms.allows[pos.Filename]
	if byLine == nil {
		return nil
	}
	if m := byLine[pos.Line]; m != nil {
		return m
	}
	return byLine[pos.Line-1]
}

// roots returns the marked roots for one contract.
func (ms *markerSet) roots(hotpath bool) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range ms.decls {
		if (hotpath && fi.Hotpath) || (!hotpath && fi.Deterministic) {
			out = append(out, fi)
		}
	}
	return out
}
