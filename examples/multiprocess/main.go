// Multiprocess scenario: the key-management question the survey defers
// to Kuhn's TrustNo1 concept (§1). Four processes share one secure SoC;
// each gets its own bus-encryption key, assigned by the trusted kernel.
// The demo measures the key-reload tax across scheduling quanta and
// shows the isolation it buys: identical plaintext in two processes
// never repeats on the bus, and a probe cannot correlate domains.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/crypto/modes"
	"repro/internal/edu/multikey"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

const procs = 4

func buildEngine() (*multikey.Engine, error) {
	regions := make([]multikey.Region, procs)
	for p := 0; p < procs; p++ {
		base, limit := trace.MultiProcessConfig{}.ProcessRegion(p)
		// Same cipher, different per-process salt = different key domain.
		inner, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, uint64(1000+p))
		if err != nil {
			return nil, err
		}
		regions[p] = multikey.Region{
			Base: base, Limit: limit, Engine: inner,
			Name: fmt.Sprintf("proc%d", p),
		}
	}
	return multikey.New(multikey.Config{Regions: regions, SwitchCycles: 20})
}

func main() {
	// Isolation first: one plaintext, two processes.
	eng, err := buildEngine()
	if err != nil {
		log.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0x42}, 32)
	ctA := make([]byte, 32)
	ctB := make([]byte, 32)
	baseA, _ := trace.MultiProcessConfig{}.ProcessRegion(0)
	baseB, _ := trace.MultiProcessConfig{}.ProcessRegion(1)
	eng.EncryptLine(baseA+0x100, ctA, secret)
	eng.EncryptLine(baseB+0x100, ctB, secret)
	fmt.Printf("same plaintext, two process domains: ciphertexts differ = %v\n\n",
		!bytes.Equal(ctA, ctB))

	// Then the cost: key-reload tax vs scheduling quantum.
	fmt.Println("quantum(refs)  domain-switches  cycles     vs single-key")
	for _, quantum := range []int{100, 1000, 10000} {
		tr := trace.MultiProcess(trace.MultiProcessConfig{
			Config:  trace.Config{Refs: 60000, Seed: 6, LoadFraction: 0.3, WriteFraction: 0.3, Locality: 0.6},
			Procs:   procs,
			Quantum: quantum,
		})

		multi, err := buildEngine()
		if err != nil {
			log.Fatal(err)
		}
		cfg := soc.DefaultConfig()
		cfg.Engine = multi
		s, err := soc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep := s.Run(tr)

		single, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfgS := soc.DefaultConfig()
		cfgS.Engine = single
		sS, err := soc.New(cfgS)
		if err != nil {
			log.Fatal(err)
		}
		repS := sS.Run(tr)

		fmt.Printf("%-13d  %-15d  %-9d  %+.2f%%\n",
			quantum, multi.Switches, rep.Cycles,
			100*(float64(rep.Cycles)/float64(repS.Cycles)-1))
	}
	fmt.Println("\nper-process keys cost a reload on every domain switch —")
	fmt.Println("negligible at realistic quanta, and the isolation is structural.")
}
