// CodePack demo: the survey's §4 proposal. Train a CodePack-style codec
// on a program, show the ~35% density gain, prove the Figure 8 ordering
// rule (ciphertext does not compress), and measure the combined
// compress-then-encrypt engine against encryption alone across memory
// speeds — the claimed "+/- 10% depending on the type of memory used".
package main

import (
	"fmt"
	"log"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/crypto/aes"
	"repro/internal/crypto/modes"
	"repro/internal/edu/compressengine"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

func main() {
	program := compress.SyntheticProgram(128<<10, 2005)
	codec, err := compress.Train(program)
	if err != nil {
		log.Fatal(err)
	}
	image, err := codec.Compress(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d bytes -> %d bytes compressed (ratio %.3f, density gain %.0f%%)\n",
		image.OriginalBytes, image.CompressedBytes(), image.Ratio(), 100*(image.Ratio()-1))

	// Verify random-access decompression (jumps need it).
	blk, err := codec.DecompressBlock(image, 37)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i, b := range blk {
		ok = ok && b == program[37*compress.BlockBytes+i]
	}
	fmt.Printf("random-access block decode correct: %v\n", ok)

	// Figure 8's ordering rule.
	cipher, _ := aes.New([]byte("0123456789abcdef"))
	ct := make([]byte, len(program))
	modes.NewECB(cipher).Encrypt(ct, program)
	ctCodec, err := compress.Train(ct)
	if err != nil {
		log.Fatal(err)
	}
	ctImage, err := ctCodec.Compress(ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressing ciphertext instead: ratio %.3f (it EXPANDS — compress first!)\n",
		ctImage.Ratio())

	// Combined engine vs encryption alone, across memory speeds.
	fmt.Println("\nmemory speed sweep (overhead vs plaintext baseline):")
	fmt.Println("memory        encrypt-only   compress+encrypt")
	tr := trace.CodeOnly(trace.Config{Refs: 60000, Seed: 3, JumpRate: 0.03, CodeSize: 2 << 20})
	for _, m := range []struct {
		name            string
		busDiv, dramDiv int
	}{
		{"fast SRAM   ", 1, 1},
		{"SDRAM       ", 2, 3},
		{"narrow flash", 6, 8},
	} {
		cfg := soc.DefaultConfig()
		cfg.Bus.ClockDivider = m.busDiv
		cfg.DRAM.ClockDivider = m.dramDiv

		encOnly, err := products.XOM([]byte("0123456789abcdef"))
		if err != nil {
			log.Fatal(err)
		}
		b1, w1, err := soc.Compare(cfg, encOnly, tr)
		if err != nil {
			log.Fatal(err)
		}

		inner, err := products.XOM([]byte("0123456789abcdef"))
		if err != nil {
			log.Fatal(err)
		}
		combo, err := compressengine.New(compressengine.Config{
			Codec: codec, Ratio: image.Ratio(), CodeLimit: core.CodeLimit, Inner: inner, Gates: 20000,
		})
		if err != nil {
			log.Fatal(err)
		}
		b2, w2, err := soc.Compare(cfg, combo, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  %+7.2f%%       %+7.2f%%\n",
			m.name, 100*w1.OverheadVs(b1), 100*w2.OverheadVs(b2))
	}
	fmt.Println("\ncompression narrows the encryption gap as memory slows — §4's point")
}
