// Quickstart: put an encryption engine on a simulated processor-memory
// bus, verify a board-level probe sees only ciphertext, and measure what
// the protection costs — the survey's whole subject in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

func main() {
	// 1. Pick a surveyed engine — AEGIS-style AES with address-bound IVs.
	entry := core.MustEntry("aegis")
	engine, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the SoC (16 KiB cache, 32-bit bus, SDRAM-class memory)
	//    and install a secret program through the engine.
	cfg := soc.DefaultConfig()
	cfg.Engine = engine
	system, err := soc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	secret := bytes.Repeat([]byte("TOP-SECRET FIRMWARE BLOCK 01 -- "), 64)
	if err := system.LoadImage(0, secret); err != nil {
		log.Fatal(err)
	}

	// 3. Clip a probe onto the bus — the survey's class-II attacker.
	probe := &attack.Probe{}
	system.Bus().Attach(probe)

	// 4. Run a workload and look at the wires.
	workload := trace.Sequential(trace.Config{
		Refs: 50000, Seed: 1, LoadFraction: 0.3, WriteFraction: 0.25, Locality: 0.7,
	})
	report := system.Run(workload)

	fmt.Printf("ran %d refs in %d cycles (CPI %.2f)\n",
		report.Refs, report.Cycles, report.CPI())
	fmt.Printf("probe captured %d bus transactions, %d bytes\n",
		len(probe.Beats), len(probe.Data()))
	fmt.Printf("plaintext visible to probe: %v\n", probe.ContainsPlaintext(secret[:16]))
	// Spatial leak: duplicate ciphertext blocks across the memory image.
	// The plaintext repeats a 32-byte string 64 times; address-bound IVs
	// must hide that entirely.
	fmt.Printf("duplicate-block leak in memory image: %.3f (plaintext image: %.3f)\n",
		attack.DuplicateBlockRatio(system.DRAM().Dump(0, len(secret)), 16),
		attack.DuplicateBlockRatio(secret, 16))

	// 5. What did it cost? Same trace, plaintext system.
	fresh, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}
	base, with, err := soc.Compare(soc.DefaultConfig(), fresh, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encryption overhead: %.1f%% (paper quotes ~25%% for this design)\n",
		100*with.OverheadVs(base))
}
