// Kuhn's attack, replayed: break the DS5002FP's byte-wise bus encryption
// with the cipher instruction search (256 possibilities per byte), dump
// the protected firmware through the parallel port, then watch the same
// strategy collapse against the DS5240's 64-bit block.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/attack"
)

func main() {
	firmware := append(
		[]byte("DS5002 PROTECTED FIRMWARE: pay-tv descrambler, entitlement keys 4A-3F-99-D2 :: "),
		bytes.Repeat([]byte{0x74, 0x2A, 0xF5, 0x90, 0x80, 0xFB}, 24)...)

	// The victim: battery-backed key, firmware loaded through the
	// part's encrypting bootstrap loader.
	victim, err := attack.NewVictim([]byte("battery!"), firmware)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim holds %d bytes of protected firmware\n", len(firmware))
	fmt.Printf("raw external memory contains plaintext: %v\n",
		bytes.Contains(victim.MemImage(), firmware[:16]))

	// The attack: exhaustive 8-bit search per gadget byte, then the dump
	// gadget walked over the address space.
	result, err := attack.Kuhn(victim, 0x8000, len(firmware))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- cipher instruction search complete ---\n")
	fmt.Printf("total probes: %d (a few 256-way searches + 1 per dumped byte)\n", result.Probes)
	fmt.Printf("dump matches firmware: %v\n", bytes.Equal(result.Dump, firmware))
	fmt.Printf("recovered prefix: %q\n", result.Dump[:48])

	// The fix: the DS5240's 64-bit blocks make the search 2^64-way.
	hits, err := attack.DS5240SearchInfeasible([]byte("0123456789abcdef"), 500000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- same strategy vs DS5240 ---\n")
	fmt.Printf("chosen-gadget hits in 5e5 random 64-bit injections: %d\n", hits)
	fmt.Println("(expected ~2^-64 per injection: the survey's \"8-bit based ciphering")
	fmt.Println(" passes to 64-bit based ciphering\" closes the attack)")
}
