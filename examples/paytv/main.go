// Pay-TV scenario: the survey's Figure 1 end to end. A software editor
// sells a conditional-access module to be run on a "secure" set-top-box
// processor. The session key crosses a public network wrapped under the
// chip's public key; the software crosses it ciphered under the session
// key; the processor installs it into external memory re-ciphered by its
// bus-encryption engine — and neither the network eavesdropper nor the
// board-level bus probe ever sees a plaintext byte.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/keyexchange"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// spy is the network eavesdropper.
type spy struct{ captured []byte }

func (s *spy) Intercept(m keyexchange.Message) { s.captured = append(s.captured, m.Body...) }

func main() {
	// The editor's product: a conditional-access module.
	camSoftware := append([]byte("PAY-TV CAM v3 entitlements=SPORTS|MOVIES key-ladder-root=0xDEADBEEF "),
		compress.SyntheticProgram(8<<10, 2005)...)

	// --- Act 1: delivery over the open network (Figure 1). ---
	channel := &keyexchange.Channel{}
	networkSpy := &spy{}
	channel.Tap(networkSpy)

	manufacturer := keyexchange.NewManufacturer(42, 512)
	processor, err := manufacturer.Provision("STB-2005-0001")
	if err != nil {
		log.Fatal(err)
	}
	editor := keyexchange.NewEditor(7, camSoftware)

	installedImage, err := keyexchange.Run(channel, manufacturer, editor, processor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[network] %d messages crossed the open channel\n", len(channel.Log()))
	fmt.Printf("[network] eavesdropper captured %d bytes; CAM plaintext visible: %v\n",
		len(networkSpy.captured), bytes.Contains(networkSpy.captured, camSoftware[:16]))
	fmt.Printf("[processor] recovered the CAM image intact: %v\n",
		bytes.Equal(installedImage, camSoftware))

	// --- Act 2: execution behind the bus engine (Figure 2c). ---
	entry := core.MustEntry("aegis")
	engine, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Engine = engine
	stb, err := soc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Step 6 of the protocol: install into external memory through the
	// bus engine.
	if err := stb.LoadImage(0, installedImage); err != nil {
		log.Fatal(err)
	}

	busProbe := &attack.Probe{}
	stb.Bus().Attach(busProbe)
	rep := stb.Run(trace.Sequential(trace.Config{
		Refs: 40000, Seed: 9, LoadFraction: 0.3, WriteFraction: 0.2,
		Locality: 0.7, CodeSize: uint64(len(installedImage)) &^ 31,
	}))

	fmt.Printf("[set-top box] ran %d refs, CPI %.2f\n", rep.Refs, rep.CPI())
	fmt.Printf("[bus probe] captured %d bytes on the processor-memory bus\n", len(busProbe.Data()))
	fmt.Printf("[bus probe] CAM plaintext visible on the bus: %v\n",
		busProbe.ContainsPlaintext(camSoftware[:16]))
	fmt.Printf("[dram chip] CAM plaintext visible in desoldered memory: %v\n",
		bytes.Contains(stb.DRAM().Dump(0, len(installedImage)), camSoftware[:16]))
	fmt.Printf("[cpu] CAM readable from inside the trusted area: %v\n",
		bytes.Equal(stb.ReadPlain(0, len(camSoftware)), camSoftware))
}
