// Tamper lab: the survey's future-work scenario made concrete. An
// attacker with write access to external memory tries the three
// canonical active attacks — spoofing, splicing, replay — against a
// set-top box whose balance counter lives in encrypted external memory,
// at three protection levels: encryption only, encryption + MAC, and
// encryption + MAC + freshness counters.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/edu"
	"repro/internal/edu/integrity"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
)

func engineFor(level string) (edu.Engine, error) {
	inner, err := products.XOM([]byte("0123456789abcdef"))
	if err != nil {
		return nil, err
	}
	switch level {
	case "encrypt-only":
		return inner, nil
	case "encrypt+mac":
		return integrity.New(integrity.Config{
			Inner: inner, MACKey: []byte("authentication-key"), Level: integrity.MACOnly,
		})
	case "encrypt+mac+freshness":
		return integrity.New(integrity.Config{
			Inner: inner, MACKey: []byte("authentication-key"),
			Level: integrity.MACWithFreshness, ProtectedLines: 1 << 16,
		})
	}
	return nil, fmt.Errorf("unknown level %q", level)
}

func main() {
	firmware := bytes.Repeat([]byte("SET-TOP FIRMWARE + BALANCE REC. "), 32)

	levels := []string{"encrypt-only", "encrypt+mac", "encrypt+mac+freshness"}
	fmt.Printf("%-22s  %-10s  %-10s  %-10s\n", "protection", "spoof", "splice", "replay")
	fmt.Printf("%-22s  %-10s  %-10s  %-10s\n", "----------", "-----", "------", "------")

	for _, level := range levels {
		results := make([]string, 0, 3)

		// Fresh system per attack: tampering leaves damage behind.
		build := func() *soc.SoC {
			eng, err := engineFor(level)
			if err != nil {
				log.Fatal(err)
			}
			cfg := soc.DefaultConfig()
			cfg.Engine = eng
			s, err := soc.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.LoadImage(0, firmware); err != nil {
				log.Fatal(err)
			}
			return s
		}
		verdict := func(o attack.TamperOutcome) string {
			if o.Accepted {
				return "ATTACK OK"
			}
			return "blocked"
		}

		s := build()
		results = append(results, verdict(attack.Spoof(s, 0x40, bytes.Repeat([]byte{0xEE}, 32))))

		s = build()
		results = append(results, verdict(attack.Splice(s, 0x00, 0x40, 32)))

		s = build()
		results = append(results, verdict(attack.Replay(s, 0x40, 32, func() {
			// Legitimate update: the box spends the balance.
			if err := s.LoadImage(0x40, make([]byte, 32)); err != nil {
				log.Fatal(err)
			}
		})))

		fmt.Printf("%-22s  %-10s  %-10s  %-10s\n", level, results[0], results[1], results[2])
	}

	fmt.Println("\nencryption hides the data; only authentication defends it —")
	fmt.Println("the survey's closing point, and the road to AEGIS's integrity trees.")
}
