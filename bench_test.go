// Package repro's root bench file regenerates every quantitative claim
// of the survey (DESIGN.md's experiment index E1–E16): run
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* executes its experiment once per iteration and, on
// the first iteration, prints the regenerated table so the bench log
// doubles as the paper-vs-measured record that EXPERIMENTS.md cites.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// benchRefs keeps each simulation short enough for -bench=. to complete
// quickly while staying in the calibrated regime.
const benchRefs = 30000

var printOnce sync.Map

// runExperiment executes exp b.N times, printing its table once.
func runExperiment(b *testing.B, id string, exp func() (*core.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := exp()
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkE1SurveyTable(b *testing.B) {
	runExperiment(b, "E1", func() (*core.Table, error) { return core.E1SurveyTable(benchRefs) })
}

func BenchmarkE2StreamVsBlock(b *testing.B) {
	runExperiment(b, "E2", func() (*core.Table, error) { return core.E2StreamVsBlock(benchRefs) })
}

func BenchmarkE3WritePenalty(b *testing.B) {
	runExperiment(b, "E3", func() (*core.Table, error) { return core.E3WritePenalty(benchRefs) })
}

func BenchmarkE4ECBLeakage(b *testing.B) {
	runExperiment(b, "E4", core.E4ECBLeakage)
}

func BenchmarkE5CBCRandomAccess(b *testing.B) {
	runExperiment(b, "E5", func() (*core.Table, error) { return core.E5CBCRandomAccess(benchRefs) })
}

func BenchmarkE6Aegis(b *testing.B) {
	runExperiment(b, "E6", func() (*core.Table, error) { return core.E6Aegis(benchRefs) })
}

func BenchmarkE7XomPipeline(b *testing.B) {
	runExperiment(b, "E7", func() (*core.Table, error) { return core.E7XomPipeline(benchRefs) })
}

func BenchmarkE8Gilmont(b *testing.B) {
	runExperiment(b, "E8", func() (*core.Table, error) { return core.E8Gilmont(60000) })
}

func BenchmarkE9KuhnAttack(b *testing.B) {
	runExperiment(b, "E9", core.E9Kuhn)
}

func BenchmarkE10CodePack(b *testing.B) {
	runExperiment(b, "E10", func() (*core.Table, error) { return core.E10CodePack(benchRefs) })
}

func BenchmarkE11CacheSideEDU(b *testing.B) {
	runExperiment(b, "E11", func() (*core.Table, error) { return core.E11CacheSide(benchRefs) })
}

func BenchmarkE12CompressThenEncrypt(b *testing.B) {
	runExperiment(b, "E12", func() (*core.Table, error) { return core.E12CompressThenEncrypt(benchRefs) })
}

func BenchmarkE13BruteForce(b *testing.B) {
	runExperiment(b, "E13", core.E13BruteForce)
}

func BenchmarkE14KeyExchange(b *testing.B) {
	runExperiment(b, "E14", core.E14KeyExchange)
}

func BenchmarkE15BestCipher(b *testing.B) {
	runExperiment(b, "E15", core.E15Best)
}

func BenchmarkE16VlsiDma(b *testing.B) {
	runExperiment(b, "E16", func() (*core.Table, error) { return core.E16VlsiDma(benchRefs) })
}

func BenchmarkE17Integrity(b *testing.B) {
	runExperiment(b, "E17", func() (*core.Table, error) { return core.E17Integrity(benchRefs) })
}

func BenchmarkE18Ablations(b *testing.B) {
	runExperiment(b, "E18", func() (*core.Table, error) { return core.E18Ablations(benchRefs) })
}

func BenchmarkE19KeyManagement(b *testing.B) {
	runExperiment(b, "E19", func() (*core.Table, error) { return core.E19KeyManagement(benchRefs) })
}
