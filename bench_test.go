// Package repro's root bench file regenerates every quantitative claim
// of the survey (DESIGN.md's experiment index E1–E22): run
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* submits its experiment through the campaign
// scheduler (internal/campaign) and, on the first iteration, prints the
// regenerated table so the bench log doubles as the paper-vs-measured
// record that EXPERIMENTS.md cites. BenchmarkSuite* run the whole suite
// and the grid sweep at -jobs 1 vs one-per-CPU, so the bench log also
// records the parallel speedup.
package repro

import (
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// benchRefs keeps each simulation short enough for -bench=. to complete
// quickly while staying in the calibrated regime.
const benchRefs = 30000

var printOnce sync.Map

// runExperiment submits experiment id to the campaign scheduler b.N
// times, printing its table once.
func runExperiment(b *testing.B, id string, refs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := campaign.RunSuite([]string{id}, refs, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.Log("\n" + tables[0].String())
		}
	}
}

func BenchmarkE1SurveyTable(b *testing.B)          { runExperiment(b, "E1", benchRefs) }
func BenchmarkE2StreamVsBlock(b *testing.B)        { runExperiment(b, "E2", benchRefs) }
func BenchmarkE3WritePenalty(b *testing.B)         { runExperiment(b, "E3", benchRefs) }
func BenchmarkE4ECBLeakage(b *testing.B)           { runExperiment(b, "E4", benchRefs) }
func BenchmarkE5CBCRandomAccess(b *testing.B)      { runExperiment(b, "E5", benchRefs) }
func BenchmarkE6Aegis(b *testing.B)                { runExperiment(b, "E6", benchRefs) }
func BenchmarkE7XomPipeline(b *testing.B)          { runExperiment(b, "E7", benchRefs) }
func BenchmarkE8Gilmont(b *testing.B)              { runExperiment(b, "E8", 60000) }
func BenchmarkE9KuhnAttack(b *testing.B)           { runExperiment(b, "E9", benchRefs) }
func BenchmarkE10CodePack(b *testing.B)            { runExperiment(b, "E10", benchRefs) }
func BenchmarkE11CacheSideEDU(b *testing.B)        { runExperiment(b, "E11", benchRefs) }
func BenchmarkE12CompressThenEncrypt(b *testing.B) { runExperiment(b, "E12", benchRefs) }
func BenchmarkE13BruteForce(b *testing.B)          { runExperiment(b, "E13", benchRefs) }
func BenchmarkE14KeyExchange(b *testing.B)         { runExperiment(b, "E14", benchRefs) }
func BenchmarkE15BestCipher(b *testing.B)          { runExperiment(b, "E15", benchRefs) }
func BenchmarkE16VlsiDma(b *testing.B)             { runExperiment(b, "E16", benchRefs) }
func BenchmarkE17Integrity(b *testing.B)           { runExperiment(b, "E17", benchRefs) }
func BenchmarkE18Ablations(b *testing.B)           { runExperiment(b, "E18", benchRefs) }
func BenchmarkE19KeyManagement(b *testing.B)       { runExperiment(b, "E19", benchRefs) }
func BenchmarkE20AuthTrees(b *testing.B)           { runExperiment(b, "E20", benchRefs) }
func BenchmarkE21AttackSweep(b *testing.B)         { runExperiment(b, "E21", benchRefs) }
func BenchmarkE22Hierarchy(b *testing.B)           { runExperiment(b, "E22", benchRefs) }

// suiteBench runs the full E1–E22 suite at a fixed worker count; the
// Sequential/Parallel pair measures the scheduler's wall-clock win.
func suiteBench(b *testing.B, jobs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.RunSuite(nil, 10000, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteSequential(b *testing.B) { suiteBench(b, 1) }
func BenchmarkSuiteParallel(b *testing.B)   { suiteBench(b, campaign.DefaultJobs()) }

// sweepBench runs a full-registry grid sweep at a fixed worker count.
func sweepBench(b *testing.B, jobs int) {
	b.Helper()
	spec := campaign.Spec{Refs: []int{10000}}
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Sweep(spec, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepGridSequential(b *testing.B) { sweepBench(b, 1) }
func BenchmarkSweepGridParallel(b *testing.B)   { sweepBench(b, campaign.DefaultJobs()) }

// reportPerRef attaches the trajectory metrics benchtrend records:
// ns/ref and refs/s, normalized by how many simulated references one
// benchmark op performs. Call after the timed section.
func reportPerRef(b *testing.B, refsPerOp int) {
	b.Helper()
	refs := float64(b.N) * float64(refsPerOp)
	if ns := float64(b.Elapsed().Nanoseconds()); ns > 0 {
		b.ReportMetric(ns/refs, "ns/ref")
		b.ReportMetric(refs/b.Elapsed().Seconds(), "refs/s")
	}
}

// hotLoopBench drives one SoC with a streaming source of exactly b.N
// references, so ns/op is nanoseconds per reference and allocs/op is
// allocations per reference — the number the allocation-free hot path
// pins at 0 (see soc.TestHotLoopZeroAllocs for the hard assertion).
// A warm run outside the timer pre-faults DRAM pages and metric cells,
// so the report stays 0 allocs/op even at -benchtime 1x (the CI alloc
// smokes run exactly one iteration). withMetrics additionally installs
// a live obs registry, so the bench log also proves the 0 allocs/op
// contract holds under instrumentation.
func hotLoopBench(b *testing.B, engineKey string, withMetrics, withTrace bool) {
	b.Helper()
	cfg := soc.DefaultConfig()
	if engineKey != "" {
		eng, err := core.MustEntry(engineKey).Build()
		if err != nil {
			b.Fatal(err)
		}
		cfg.Engine = eng
	}
	if withMetrics {
		cfg.Metrics = soc.NewMetrics(obs.NewRegistry())
	}
	if withTrace {
		cfg.Recorder = rec.New(1 << 16)
	}
	s, err := soc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mkSrc := func(refs int) trace.RefSource {
		return trace.SequentialSource(trace.Config{
			Refs: refs, Seed: 1,
			LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7,
		})
	}
	s.Run(mkSrc(20000)) // warm DRAM pages, metric cells, recorder ring
	src := mkSrc(b.N)
	b.SetBytes(int64(cfg.Bus.WidthBytes)) // architectural bytes per reference
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(src)
	b.StopTimer()
	reportPerRef(b, 1)
}

func BenchmarkHotLoopPlaintext(b *testing.B)    { hotLoopBench(b, "", false, false) }
func BenchmarkHotLoopAegis(b *testing.B)        { hotLoopBench(b, "aegis", false, false) }
func BenchmarkHotLoopInstrumented(b *testing.B) { hotLoopBench(b, "aegis", true, false) }

// BenchmarkHotLoopTraced is the flight-recorder pin: full metrics
// instrumentation plus a live recorder ring, still 0 allocs/op — the
// CI smoke greps for it (the hard per-path assertion lives in
// soc.TestHotLoopZeroAllocsTraced).
func BenchmarkHotLoopTraced(b *testing.B) { hotLoopBench(b, "aegis", true, true) }

// BenchmarkHotLoopL2 drives b.N references through a two-level system
// (64 KiB L2, AEGIS engine at the outer boundary, counter-tree
// verifier installed) with the first run outside the timer as warmup,
// so allocs/op is allocations per reference on the L2 miss path — the
// CI smoke asserts it prints "0 allocs/op" (the hard per-path
// assertion lives in soc.TestHotLoopZeroAllocsL2).
func BenchmarkHotLoopL2(b *testing.B) {
	eng, err := core.MustEntry("aegis").Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.L2 = soc.DefaultL2Config(64 << 10)
	cfg.Engine = eng
	if cfg.Verifier, err = core.BuildAuthenticator("ctree", cfg.Cache.LineSize); err != nil {
		b.Fatal(err)
	}
	s, err := soc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mkSrc := func(refs int) trace.RefSource {
		return trace.SequentialSource(trace.Config{
			Refs: refs, Seed: 1,
			LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7,
		})
	}
	s.Run(mkSrc(20000)) // warm DRAM pages, tag stores, node cache, event buffers
	src := mkSrc(b.N)
	b.SetBytes(int64(cfg.Bus.WidthBytes))
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(src)
	b.StopTimer()
	reportPerRef(b, 1)
}

// BenchmarkAuthTreeVerifiedRun drives a fixed 20k-reference firmware
// workload through an XOM system with a counter-tree authenticator,
// warmed before the timer starts, so allocs/op is the allocation count
// of a whole steady-state verified run — the CI bench smoke asserts it
// prints "0 allocs/op" (the hard per-path assertion lives in
// soc.TestVerifiedMissZeroAllocs).
func BenchmarkAuthTreeVerifiedRun(b *testing.B) {
	eng, err := core.MustEntry("xom").Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Engine = eng
	if cfg.Verifier, err = core.BuildAuthenticator("ctree", cfg.Cache.LineSize); err != nil {
		b.Fatal(err)
	}
	s, err := soc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	profile, _ := core.WorkloadProfile("firmware", 20000)
	profile.Seed = 7
	src := trace.FirmwareSource(profile)
	s.Run(src) // warm tag stores, node cache, DRAM pages
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(src)
	}
	b.StopTimer()
	reportPerRef(b, 20000)
}

// BenchmarkReprolintAnalyze tracks the static-contract linter's full
// cost — module load, devirtualized call-graph construction, and every
// analyzer — in the perf trajectory, so graph growth that pushes lint
// toward the CI wall-time cap surfaces as a benchmark regression before
// it surfaces as a red build.
func BenchmarkReprolintAnalyze(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := analysis.Load(".", "./...")
		if err != nil {
			b.Fatal(err)
		}
		res := prog.Analyze()
		if len(res.Diags) > 0 {
			b.Fatalf("tree not clean under reprolint: %d diagnostic(s)", len(res.Diags))
		}
	}
}
