package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var tracelabBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tracelab-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	tracelabBin = filepath.Join(dir, "tracelab")
	out, err := exec.Command("go", "build", "-o", tracelabBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building tracelab: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(tracelabBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running tracelab: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// The core claim: forensics over the event stream reproduce the attack
// schedule's accounting exactly, and the binary says so and exits 0.
func TestForensicsCrossCheck(t *testing.T) {
	stdout, stderr, code := run(t, "-refs", "20000")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	for _, want := range []string{
		"inject@", "touch@", "verify@", "trap@", "latency",
		"cross-check: event-stream accounting matches attack.Schedule exactly",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stdout, "strikes injected") {
		t.Errorf("no strike summary:\n%s", stdout)
	}
}

// A confidentiality-only system detects nothing; the chains must show
// tampered lines crossing the bus unverified, and the cross-check must
// still hold (zero detections on both sides).
func TestUnauthenticatedSystemDetectsNothing(t *testing.T) {
	stdout, stderr, code := run(t, "-authtree", "none", "-refs", "12000")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "undetected") {
		t.Errorf("auth=none shows no undetected strikes:\n%s", stdout)
	}
	if strings.Contains(stdout, "MISMATCH") {
		t.Errorf("cross-check failed:\n%s", stdout)
	}
}

// -o round-trips through -check: the dump is a valid decodable trace.
func TestDumpAndCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.json")
	_, stderr, code := run(t, "-refs", "12000", "-o", path)
	if code != 0 {
		t.Fatalf("record run exited %d: %s", code, stderr)
	}
	stdout, stderr, code := run(t, "-check", path)
	if code != 0 {
		t.Fatalf("-check exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "valid, 1 streams") {
		t.Errorf("-check output: %q", stdout)
	}
	if !strings.Contains(stdout, "strike=") || !strings.Contains(stdout, "trap=") {
		t.Errorf("-check inventory missing attack kinds: %q", stdout)
	}
}

func TestCheckRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[{"ph":"B"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := run(t, "-check", path)
	if code == 0 {
		t.Errorf("garbage trace accepted: %q", stdout)
	}
	if !strings.Contains(stderr, "tracelab:") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestRejectsZeroAttackRate(t *testing.T) {
	stdout, stderr, code := run(t, "-attack", "0")
	if code == 0 {
		t.Error("-attack 0 exited 0")
	}
	if stdout != "" {
		t.Errorf("error run wrote stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "adversary") {
		t.Errorf("stderr: %q", stderr)
	}
}
