// Command tracelab is the attack-forensics workbench: it re-runs one
// cell of the E21 active-adversary grid with the flight recorder
// installed and reconstructs, for every injected strike, the causal
// chain the aggregate table can't show —
//
//	tampered line → first bus crossing → verification → fail-stop trap
//
// printing the per-strike detection-latency breakdown E21 reports only
// as a mean. The reconstruction is self-verifying: the mean rebuilt
// from the event stream must equal the attack schedule's own
// accounting exactly (same integer sums, same division), and tracelab
// exits nonzero when it doesn't — so a passing run is evidence the
// trace is a faithful record, not a lookalike.
//
//	tracelab                          # tree authenticator, 16 strikes/10k refs
//	tracelab -authtree ctree -attack 4
//	tracelab -authtree flat-mac       # watch replay strikes go undetected
//	tracelab -o cell.json             # dump the trace for Perfetto
//	tracelab -check sweep-trace.json  # validate an exported trace file
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/obs/rec"
)

func main() {
	auth := flag.String("authtree", "tree", fmt.Sprintf("authenticator under attack: %s", strings.Join(core.AuthKeys(), ", ")))
	rate := flag.Float64("attack", 16, "strike rate in tampers per 10k references (must be > 0)")
	refs := flag.Int("refs", core.DefaultRefs, "trace length in references")
	ringCap := flag.Int("cap", 1<<20, "flight-recorder ring capacity in events")
	outPath := flag.String("o", "", "also write the recorded trace here (.csv = CSV, else Chrome JSON)")
	checkPath := flag.String("check", "", "validate an exported trace file instead of running a cell")
	flag.Parse()

	if *checkPath != "" {
		if err := check(*checkPath); err != nil {
			fatal(err)
		}
		return
	}
	if *rate <= 0 {
		fatal(fmt.Errorf("-attack must be > 0: forensics needs an adversary"))
	}

	rc := rec.New(*ringCap)
	rep, sched, err := core.E21Cell(*auth, *rate, *refs, rc)
	if err != nil {
		fatal(err)
	}
	st := rc.Seal(fmt.Sprintf("E21 auth=%s attack=%g refs=%d", *auth, *rate, *refs))

	if *outPath != "" {
		if err := writeTrace(*outPath, &rec.Trace{Streams: []rec.Stream{st}}); err != nil {
			fatal(err)
		}
	}
	if st.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "tracelab: ring overflowed: %d events dropped; forensics may be incomplete (raise -cap)\n", st.Dropped)
	}

	chains := reconstruct(st.Events)
	print(os.Stdout, *auth, *rate, rep.Cycles, chains)

	// The self-check: the stream-rebuilt accounting must match the
	// schedule's exactly — counts, per-kind splits, max, and the mean
	// down to the last bit of the float division.
	if err := crossCheck(chains, sched); err != nil {
		fmt.Fprintln(os.Stderr, "tracelab: MISMATCH:", err)
		os.Exit(2)
	}
	fmt.Printf("cross-check: event-stream accounting matches attack.Schedule exactly (mean %.6g)\n", sched.MeanLatency())
}

// chain is one injected strike's reconstructed life.
type chain struct {
	kind                       attack.TamperKind
	addr                       uint64
	strike                     uint64 // ref index at injection
	touch                      uint64 // ref of the line's first bus crossing after the strike
	verify                     uint64 // ref of its first verification
	trap                       uint64 // ref of the fail-stop event
	touched, verified, trapped bool
}

func (c *chain) latency() uint64 { return c.trap - c.strike }

// reconstruct rebuilds the per-strike chains from the event stream
// alone, mirroring the schedule's own bookkeeping: a strike opens a
// pending window on its line; the first fill or decipher of that line
// is the tampered bytes crossing the bus; the first verify is the
// authenticator's look; a trap closes the window (later traps at the
// same line are re-detections of an unrepaired line, not new
// detections — exactly the schedule's delete-on-first-trap rule).
func reconstruct(events []rec.Event) []*chain {
	pending := make(map[uint64]*chain)
	var chains []*chain
	for _, ev := range events {
		switch ev.Kind {
		case rec.KindStrike:
			if _, dup := pending[ev.Addr]; dup {
				continue
			}
			c := &chain{kind: attack.TamperKind(ev.Arg), addr: ev.Addr, strike: ev.Ref}
			pending[ev.Addr] = c
			chains = append(chains, c)
		case rec.KindFill, rec.KindDecipher:
			if c, ok := pending[ev.Addr]; ok && !c.touched {
				c.touch, c.touched = ev.Ref, true
			}
		case rec.KindVerify:
			if c, ok := pending[ev.Addr]; ok && !c.verified {
				c.verify, c.verified = ev.Ref, true
			}
		case rec.KindTrap:
			if c, ok := pending[ev.Addr]; ok {
				c.trap, c.trapped = ev.Ref, true
				delete(pending, ev.Addr)
			}
		}
	}
	return chains
}

func print(w *os.File, auth string, rate float64, cycles uint64, chains []*chain) {
	fmt.Fprintf(w, "tracelab: auth=%s attack=%g/10k, %d strikes injected, %d cycles simulated\n\n",
		auth, rate, len(chains), cycles)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "strike\tkind\tline\tinject@\ttouch@\tverify@\ttrap@\tlatency")
	for i, c := range chains {
		row := func(ref uint64, seen bool) string {
			if !seen {
				return "-"
			}
			return fmt.Sprint(ref)
		}
		lat := "undetected"
		if c.trapped {
			lat = fmt.Sprint(c.latency())
		}
		fmt.Fprintf(tw, "#%d\t%s\t0x%08x\t%d\t%s\t%s\t%s\t%s\n",
			i, c.kind, c.addr, c.strike,
			row(c.touch, c.touched), row(c.verify, c.verified), row(c.trap, c.trapped), lat)
	}
	tw.Flush()

	// The per-kind breakdown: which tamper forms this authenticator
	// actually closes, and how fast.
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\tinjected\tdetected\tmean-lat\tmax-lat")
	for _, k := range attack.AllKinds {
		var inj, det, sum, max uint64
		for _, c := range chains {
			if c.kind != k {
				continue
			}
			inj++
			if c.trapped {
				det++
				sum += c.latency()
				if c.latency() > max {
					max = c.latency()
				}
			}
		}
		mean := "-"
		if det > 0 {
			mean = fmt.Sprintf("%.1f", float64(sum)/float64(det))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\n", k, inj, det, mean, max)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// crossCheck compares the stream-rebuilt accounting against the
// schedule's own counters, field by field.
func crossCheck(chains []*chain, sched *attack.Schedule) error {
	var det, sum, max uint64
	var byKind, detByKind [3]uint64
	for _, c := range chains {
		byKind[c.kind]++
		if c.trapped {
			det++
			sum += c.latency()
			if c.latency() > max {
				max = c.latency()
			}
			detByKind[c.kind]++
		}
	}
	if got, want := uint64(len(chains)), sched.Injected; got != want {
		return fmt.Errorf("injected: stream %d, schedule %d", got, want)
	}
	if det != sched.Detected {
		return fmt.Errorf("detected: stream %d, schedule %d", det, sched.Detected)
	}
	if byKind != sched.ByKind || detByKind != sched.DetectedByKind {
		return fmt.Errorf("per-kind split: stream %v/%v, schedule %v/%v",
			byKind, detByKind, sched.ByKind, sched.DetectedByKind)
	}
	if max != sched.MaxLatency {
		return fmt.Errorf("max latency: stream %d, schedule %d", max, sched.MaxLatency)
	}
	var mean float64
	if det > 0 {
		mean = float64(sum) / float64(det)
	}
	if mean != sched.MeanLatency() {
		return fmt.Errorf("mean latency: stream %g, schedule %g", mean, sched.MeanLatency())
	}
	return nil
}

// check decodes and validates an exported trace file, printing a
// per-stream inventory.
func check(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := rec.DecodeChrome(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := rec.Validate(tr); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid, %d streams, %d events, %d dropped\n", path, len(tr.Streams), tr.Len(), tr.Dropped())
	for _, st := range tr.Streams {
		counts := make(map[rec.Kind]int)
		for _, ev := range st.Events {
			counts[ev.Kind]++
		}
		kinds := make([]rec.Kind, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
		fmt.Printf("  %-40s %6d events  %s\n", st.Track, len(st.Events), strings.Join(parts, " "))
	}
	return nil
}

// writeTrace picks the export format from the suffix, like sweep -trace.
func writeTrace(path string, tr *rec.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = rec.WriteCSV(f, tr)
	} else {
		err = rec.WriteChrome(f, tr)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracelab:", err)
	os.Exit(1)
}
