package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

var trendBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "benchtrend-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	trendBin = filepath.Join(dir, "benchtrend")
	out, err := exec.Command("go", "build", "-o", trendBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building benchtrend: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(trendBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running benchtrend: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// benchLog renders a canned `go test -bench -benchmem` log with the
// given ns/op and allocs/op for the hot-loop benchmark.
func benchLog(hotNs float64, hotAllocs int) string {
	return fmt.Sprintf(`goos: linux
goarch: amd64
pkg: repro
BenchmarkHotLoopAegis-8       	  100000	      %.1f ns/op	      %.1f ns/ref	  132033 refs/s	       0 B/op	       %d allocs/op
BenchmarkAuthTreeVerifiedRun-8	     100	  11062342 ns/op	       553.1 ns/ref	       0 B/op	       0 allocs/op
PASS
ok  	repro	2.0s
`, hotNs, hotNs, hotAllocs)
}

func writeFile(t *testing.T, path, content string) string {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The acceptance path: record a baseline snapshot, then feed a run
// with an injected slowdown — benchtrend must exit nonzero and name
// the regression. A statistically flat re-run must exit zero.
func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	baseLog := writeFile(t, filepath.Join(dir, "base.log"), benchLog(7500, 0))

	// Record the baseline as BENCH_1.json.
	stdout, stderr, code := run(t, "-dir", dir, "-input", baseLog, "-write")
	if code != 0 {
		t.Fatalf("baseline write exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	base := filepath.Join(dir, "BENCH_1.json")
	if _, err := os.Stat(base); err != nil {
		t.Fatal(err)
	}
	var snap bench.Snapshot
	data, _ := os.ReadFile(base)
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != bench.Schema || len(snap.Benchmarks) != 2 || snap.Host.NumCPU == 0 {
		t.Errorf("snapshot = %+v", snap)
	}

	// Flat re-run: clean exit.
	stdout, _, code = run(t, "-dir", dir, "-input", baseLog, "-against", base)
	if code != 0 {
		t.Errorf("flat run exited %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("flat run verdict missing:\n%s", stdout)
	}

	// 2x slowdown: nonzero exit naming the benchmark.
	slowLog := writeFile(t, filepath.Join(dir, "slow.log"), benchLog(15000, 0))
	stdout, _, code = run(t, "-dir", dir, "-input", slowLog, "-against", base)
	if code == 0 {
		t.Errorf("2x slowdown exited 0:\n%s", stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") || !strings.Contains(stdout, "BenchmarkHotLoopAegis") {
		t.Errorf("slowdown verdict missing:\n%s", stdout)
	}

	// New allocation in a formerly allocation-free benchmark: nonzero
	// exit regardless of ns/op.
	allocLog := writeFile(t, filepath.Join(dir, "alloc.log"), benchLog(7500, 2))
	stdout, _, code = run(t, "-dir", dir, "-input", allocLog, "-against", base)
	if code == 0 {
		t.Errorf("new allocation exited 0:\n%s", stdout)
	}
	if !strings.Contains(stdout, "allocation-free contract") {
		t.Errorf("alloc verdict missing:\n%s", stdout)
	}

	// Within-threshold drift at a loosened threshold: clean.
	mildLog := writeFile(t, filepath.Join(dir, "mild.log"), benchLog(8000, 0))
	_, _, code = run(t, "-dir", dir, "-input", mildLog, "-against", base, "-threshold", "0.2")
	if code != 0 {
		t.Error("7% drift failed a 20% threshold")
	}

	// -write numbers sequentially.
	_, _, code = run(t, "-dir", dir, "-input", baseLog, "-write")
	if code != 0 {
		t.Fatal("second -write failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Error("second snapshot not numbered BENCH_2.json")
	}
}

func TestErrorPaths(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-no-such-flag"}},
		{"missing input", []string{"-dir", dir, "-input", filepath.Join(dir, "absent.log")}},
		{"positional args", []string{"extra"}},
		{"empty input", []string{"-dir", dir, "-input", writeFile(t, filepath.Join(dir, "empty.log"), "PASS\n")}},
		{"bad against", []string{"-dir", dir, "-input", writeFile(t, filepath.Join(dir, "ok.log"), benchLog(1, 0)), "-against", filepath.Join(dir, "absent.json")}},
	} {
		stdout, stderr, code := run(t, tc.args...)
		if code == 0 {
			t.Errorf("%s exited 0\nstdout: %s", tc.name, stdout)
		}
		if stderr == "" {
			t.Errorf("%s produced no stderr diagnostics", tc.name)
		}
	}
}
