// Command benchtrend measures the repository's benchmark suite and
// tracks it over time: it runs `go test -bench` on the perf-critical
// benchmarks (or parses a canned bench log via -input), prints a
// comparison against a recorded BENCH_<n>.json snapshot, and exits
// nonzero when anything regressed — ns/op beyond -threshold, or any
// allocation appearing in a formerly allocation-free benchmark.
//
//	benchtrend                        # run suite, diff against latest BENCH_*.json
//	benchtrend -write                 # ... and record BENCH_<n+1>.json
//	benchtrend -against BENCH_1.json  # pin the comparison base
//	benchtrend -threshold 0.1        # fail on >10% ns/op growth
//	benchtrend -input bench.log       # diff a saved `go test -bench` log
//
// Snapshots are schema-versioned JSON carrying host metadata (Go
// version, OS/arch, CPU count); the diff warns when the recorded host
// differs from the measuring one, since cross-host deltas measure the
// machines, not the code.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"time"

	"repro/internal/bench"
)

func main() {
	benchRe := flag.String("bench", "HotLoop|AuthTree|SweepGrid", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (default: go's)")
	dir := flag.String("dir", ".", "module directory holding the benchmarks and BENCH_*.json snapshots")
	input := flag.String("input", "", "parse this saved `go test -bench` log instead of running the suite")
	against := flag.String("against", "", "snapshot to diff against (default: highest-numbered BENCH_*.json in -dir)")
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op growth that counts as a regression")
	write := flag.Bool("write", false, "record the run as the next BENCH_<n>.json in -dir")
	outPath := flag.String("o", "", "write the snapshot to this exact path instead of the BENCH_<n>.json sequence")
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %v", flag.Args()))
	}

	var raw io.Reader
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		raw = f
	} else {
		raw = runSuite(*dir, *benchRe, *benchtime)
	}
	results, err := bench.ParseBenchOutput(raw)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results matched (bench regexp %q)", *benchRe))
	}
	cur := bench.Snapshot{
		Schema:    bench.Schema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host: bench.Host{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Benchmarks: results,
	}

	base := *against
	if base == "" {
		if base, err = bench.LatestPath(*dir); err != nil {
			fatal(err)
		}
	}
	regressed := false
	if base != "" {
		old, err := readSnapshot(base)
		if err != nil {
			fatal(err)
		}
		regressed = report(os.Stdout, old, cur, base, *threshold)
	} else {
		fmt.Println("benchtrend: no baseline snapshot found; nothing to diff")
		printCurrent(cur)
	}

	if *outPath != "" || *write {
		path := *outPath
		if path == "" {
			if path, err = bench.NextPath(*dir); err != nil {
				fatal(err)
			}
		}
		if err := writeSnapshot(path, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("benchtrend: recorded %s (%d benchmarks)\n", path, len(cur.Benchmarks))
	}
	if regressed {
		os.Exit(1)
	}
}

// runSuite executes the benchmark suite and returns its output. The
// raw log is also mirrored to stderr so CI artifacts keep the full
// bench text alongside the structured snapshot.
func runSuite(dir, re, benchtime string) io.Reader {
	args := []string{"test", "-run", "^$", "-bench", re, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	os.Stderr.Write(out)
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Stderr.Write(ee.Stderr)
		}
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	return bytes.NewReader(out)
}

// report prints the old-vs-new table and the regression verdict;
// true means at least one regression.
func report(w io.Writer, old, cur bench.Snapshot, base string, threshold float64) bool {
	if old.Schema != bench.Schema {
		fmt.Fprintf(w, "benchtrend: warning: %s has schema %d, this tool writes %d\n", base, old.Schema, bench.Schema)
	}
	if old.Host != cur.Host {
		fmt.Fprintf(w, "benchtrend: warning: host changed since %s (%+v -> %+v); deltas compare machines as much as code\n",
			base, old.Host, cur.Host)
	}
	prev := map[string]bench.Result{}
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	byName := map[string]bench.Result{}
	for _, r := range cur.Benchmarks {
		byName[r.Name] = r
	}
	fmt.Fprintf(w, "benchtrend: vs %s (threshold %+.0f%% ns/op)\n", base, 100*threshold)
	for _, name := range names {
		now := byName[name]
		was, ok := prev[name]
		if !ok {
			fmt.Fprintf(w, "  %-34s %12.1f ns/op  %6g allocs/op  (new)\n", name, now.NsPerOp(), now.AllocsPerOp())
			continue
		}
		delta := 0.0
		if was.NsPerOp() > 0 {
			delta = 100 * (now.NsPerOp()/was.NsPerOp() - 1)
		}
		fmt.Fprintf(w, "  %-34s %12.1f -> %12.1f ns/op (%+.1f%%)  %g -> %g allocs/op\n",
			name, was.NsPerOp(), now.NsPerOp(), delta, was.AllocsPerOp(), now.AllocsPerOp())
	}
	regs := bench.Diff(old, cur, threshold)
	for _, r := range regs {
		fmt.Fprintf(w, "benchtrend: REGRESSION %s\n", r)
	}
	if len(regs) == 0 {
		fmt.Fprintln(w, "benchtrend: no regressions")
	}
	return len(regs) > 0
}

func printCurrent(cur bench.Snapshot) {
	for _, r := range cur.Benchmarks {
		fmt.Printf("  %-34s %12.1f ns/op  %6g allocs/op\n", r.Name, r.NsPerOp(), r.AllocsPerOp())
	}
}

func readSnapshot(path string) (bench.Snapshot, error) {
	var s bench.Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func writeSnapshot(path string, s bench.Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrend:", err)
	os.Exit(1)
}
