// reprolint statically enforces the repo's contracts: the 0 allocs/ref
// hot loop (//repro:hotpath), byte-identical deterministic output
// (//repro:deterministic), and the obs metrics discipline. It is the
// compile-time half of the enforcement story; the dynamic half is the
// AllocsPerRun pins and the jobs-determinism smokes in CI.
//
// Usage:
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -json ./internal/sim/...
//	go run ./cmd/reprolint -sarif lint.sarif ./...
//	go run ./cmd/reprolint -graph callgraph.dot ./...
//	go run ./cmd/reprolint -timing ./...
//
// Exit status: 0 when the tree is clean, 1 on findings, 2 on usage or
// load errors. Every //repro:allow suppression that was exercised is
// reported so waivers stay visible. -sarif writes the diagnostics as a
// SARIF 2.1.0 log (for CI artifact upload and code-scanning viewers),
// -graph dumps the devirtualized call graph rooted at the contract
// markers as Graphviz DOT, and -timing prints per-analyzer wall time
// to stderr so lint cost stays a visible, bounded quantity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
)

// writeFileOrStdout writes data to path, or to stdout when path is "-".
func writeFileOrStdout(path string, stdout io.Writer, data []byte) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output schema (stable; consumed by editor
// integrations and the golden test).
type jsonReport struct {
	Diagnostics []jsonDiag  `json:"diagnostics"`
	Allowances  []jsonAllow `json:"allowances"`
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonAllow struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
	Count  int    `json:"count"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	dir := fs.String("C", ".", "run as if invoked from this directory")
	sarifPath := fs.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file")
	graphPath := fs.String("graph", "", "write the devirtualized call graph (DOT) to this file and exit")
	timing := fs.Bool("timing", false, "print per-analyzer wall time to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reprolint [-json] [-sarif file] [-graph file] [-timing] [-C dir] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}

	// Paths are reported relative to the module root so output is
	// stable regardless of checkout location.
	rel := func(filename string) string {
		if r, err := filepath.Rel(prog.ModDir, filename); err == nil {
			return filepath.ToSlash(r)
		}
		return filename
	}

	if *graphPath != "" {
		if err := writeFileOrStdout(*graphPath, stdout, []byte(prog.DotGraph())); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		return 0
	}

	res := prog.Analyze()

	if *timing {
		var total time.Duration
		for _, tm := range res.Timings {
			fmt.Fprintf(stderr, "reprolint: %-18s %8.1fms\n", tm.Analyzer, float64(tm.Elapsed.Microseconds())/1000)
			total += tm.Elapsed
		}
		fmt.Fprintf(stderr, "reprolint: %-18s %8.1fms\n", "total", float64(total.Microseconds())/1000)
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		werr := writeSARIF(f, res, rel)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "reprolint:", werr)
			return 2
		}
	}

	if *jsonOut {
		rep := jsonReport{Diagnostics: []jsonDiag{}, Allowances: []jsonAllow{}}
		for _, d := range res.Diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, a := range res.Allowances {
			rep.Allowances = append(rep.Allowances, jsonAllow{
				File: rel(a.Pos.Filename), Line: a.Pos.Line, Reason: a.Reason, Count: a.Count,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if len(res.Allowances) > 0 {
			fmt.Fprintf(stdout, "%d //repro:allow suppression(s) in effect:\n", len(res.Allowances))
			for _, a := range res.Allowances {
				fmt.Fprintf(stdout, "  %s:%d: %s (suppressed %d)\n", rel(a.Pos.Filename), a.Pos.Line, a.Reason, a.Count)
			}
		}
		if len(res.Diags) > 0 {
			fmt.Fprintf(stdout, "%d finding(s).\n", len(res.Diags))
		}
	}

	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}
