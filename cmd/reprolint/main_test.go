package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the reprolint golden file")

// TestSeededRegressions is the acceptance gate for the analyzer suite:
// the demo fixture carries one injected violation per analyzer (a
// fmt.Sprintf in a //repro:hotpath function, a time.Now() in an
// emitter, a metric-cell map lookup in a publisher) and each must
// produce a file:line diagnostic and a nonzero exit.
func TestSeededRegressions(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"cmd/reprolint/testdata/src/demo/demo.go:22:", // fmt.Sprintf in HotRef
		"hotpathalloc: call to fmt.Sprintf allocates",
		"cmd/reprolint/testdata/src/demo/demo.go:27:", // time.Now in EmitRow
		"determinism: call to time.Now reads the wall clock",
		"cmd/reprolint/testdata/src/demo/demo.go:32:", // map lookup in Publish
		"metricsdiscipline: metric cell fetched through a map",
		"1 //repro:allow suppression(s) in effect",
		"steady-state writes hit existing keys (suppressed 1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\noutput:\n%s", want, out)
		}
	}
}

// TestJSONGolden pins the -json schema against a golden file, the same
// idiom as internal/campaign/testdata. Refresh deliberately with
//
//	go test ./cmd/reprolint -run TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "reprolint.json.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from %s (refresh deliberately with -update):\ngot:\n%s\nwant:\n%s",
			golden, stdout.String(), want)
	}
}

// TestSARIFOutput: -sarif writes a parseable SARIF 2.1.0 log alongside
// the normal text report — one rule per analyzer, one result per
// diagnostic, module-relative URIs — and leaves the exit code driven
// by the findings.
func TestSARIFOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", path, "./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "reprolint" {
		t.Fatalf("expected one run driven by reprolint, got %+v", log.Runs)
	}
	rules := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, want := range []string{"hotpathalloc", "determinism", "shardpurity", "atomicdiscipline", "metricsdiscipline", "recdiscipline", "devirt"} {
		if !rules[want] {
			t.Errorf("rules missing analyzer %q", want)
		}
	}
	found := false
	for _, r := range log.Runs[0].Results {
		if r.RuleID == "hotpathalloc" && strings.Contains(r.Message.Text, "fmt.Sprintf") {
			found = true
			if len(r.Locations) != 1 || !strings.HasPrefix(r.Locations[0].PhysicalLocation.ArtifactLocation.URI, "cmd/reprolint/testdata/") {
				t.Errorf("fmt.Sprintf result has bad location: %+v", r.Locations)
			}
		}
	}
	if !found {
		t.Errorf("no hotpathalloc result mentioning fmt.Sprintf in:\n%s", data)
	}
}

// TestGraphDump: -graph writes the DOT call graph (to stdout via "-")
// and exits 0 without running the analyzers.
func TestGraphDump(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-graph", "-", "./testdata/src/demo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"digraph reprolint", "rankdir=LR", "hotpath"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q\noutput:\n%s", want, out)
		}
	}
}

// TestTimingOutput: -timing reports per-analyzer wall time on stderr
// only — stdout (and with it the -json golden schema) stays untouched.
func TestTimingOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-timing", "-C", "../../internal/crypto/ghash", "."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout must stay clean under -timing, got:\n%s", stdout.String())
	}
	errOut := stderr.String()
	for _, want := range []string{"hotpathalloc", "shardpurity", "atomicdiscipline", "total"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("timing output missing %q\nstderr:\n%s", want, errOut)
		}
	}
}

// TestCleanExit: a clean package yields exit 0 and empty text output.
func TestCleanExit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../../internal/crypto/ghash", "."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no output on a clean tree, got:\n%s", stdout.String())
	}
}

// TestUsageErrors: bad flags and unloadable patterns exit 2 with a
// message on stderr and nothing on stdout.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"./does/not/exist"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if stderr.Len() == 0 {
			t.Errorf("run(%v): expected a message on stderr", args)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v): stdout must stay clean, got %q", args, stdout.String())
		}
	}
}
