package main

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
)

// SARIF 2.1.0 output, the static-analysis interchange format CI
// artifact viewers and code-scanning UIs ingest. One run, one rule per
// analyzer, one result per surviving diagnostic with a file/region
// location relative to the module root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the result as a SARIF 2.1.0 log. rel maps absolute
// filenames to module-relative URIs.
func writeSARIF(w io.Writer, res *analysis.Result, rel func(string) string) error {
	driver := sarifDriver{Name: "reprolint"}
	for _, a := range analysis.All {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "markers",
		ShortDescription: sarifText{Text: "marker-grammar problems: unknown directives, missing reasons, stale allowances"},
	})

	results := []sarifResult{}
	for _, d := range res.Diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: rel(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
