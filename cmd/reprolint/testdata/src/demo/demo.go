// Package demo is the reprolint driver fixture: one seeded regression
// per analyzer (the acceptance-criteria trio — a fmt.Sprintf in a hot
// function, a time.Now in an emitter, a registry map lookup in a
// publisher) plus one exercised //repro:allow, so the golden JSON
// covers every output field.
package demo

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

type metrics struct {
	refs  *obs.Counter
	cells map[string]*obs.Counter
}

//repro:hotpath
func (m *metrics) HotRef(id int) string {
	return fmt.Sprintf("ref %d", id)
}

//repro:deterministic
func EmitRow() int64 {
	return time.Now().UnixNano()
}

//repro:hotpath
func (m *metrics) Publish() {
	m.cells["demo.refs"].Inc()
}

//repro:hotpath
func (m *metrics) Warm(seen map[int]bool, id int) {
	seen[id] = true //repro:allow steady-state writes hit existing keys
	m.refs.Inc()
}
