// Command sweepd is the resident sweep service: the cmd/sweep campaign
// engine promoted to a long-lived HTTP fabric. POST a grid spec (the
// same JSON `sweep -spec` reads) to /sweeps and it is validated,
// expanded, and enqueued on a bounded admission queue (429 on
// overflow) feeding one shared worker pool; stream incremental NDJSON
// rows from /sweeps/{id}/results as points complete, fetch the final
// report — byte-identical to the sweep CLI on the same spec — from
// /sweeps/{id}/result, and DELETE to cancel. All sweeps share one
// process-lifetime baseline/result store, so concurrent users with
// overlapping grids reuse each other's work; -store persists it across
// restarts.
//
//	sweepd -addr localhost:8344
//	curl -X POST -d '{"engines":["aegis"],"workloads":["sequential"],"refs":[20000]}' localhost:8344/sweeps
//	curl -N localhost:8344/sweeps/s1-91c2e0f7/results         # live NDJSON rows
//	curl 'localhost:8344/sweeps/s1-91c2e0f7/result?format=csv'
//	curl -X DELETE localhost:8344/sweeps/s1-91c2e0f7          # cancel
//	curl localhost:8344/metrics                               # fabric + store counters
//
// Grid axis flags (the sweep CLI's vocabulary) define an optional
// warm-up sweep executed before the server starts serving: a fleet
// bring-up can pre-compute the baselines its users' grids will share.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address")
	workers := flag.Int("workers", campaign.DefaultJobs(), "shared simulation worker pool size")
	queueDepth := flag.Int("queue", 16, "admission queue depth (sweeps waiting to execute; overflow answers 429)")
	maxActive := flag.Int("max-active", 2, "sweeps feeding the worker pool concurrently")
	maxTasks := flag.Int("max-tasks", 65536, "largest grid expansion accepted (413 beyond)")
	storePath := flag.String("store", "", "shared-store checkpoint file: loaded at boot, rewritten after every sweep and at shutdown")
	traceCap := flag.String("trace-cap", "", "arm per-sweep flight recording with this per-task ring capacity in events, K/M suffixes ok (debugging; default off)")
	warmJobs := flag.Int("warm-jobs", 0, "worker count for the warm-up sweep (default: -workers)")
	specFlags := campaign.RegisterSpecFlags(flag.CommandLine)
	flag.Parse()

	ringCap := 0
	if *traceCap != "" {
		caps, err := campaign.ParseIntList(*traceCap)
		if err != nil || len(caps) != 1 || caps[0] <= 0 {
			fatal(fmt.Errorf("-trace-cap wants one positive event count, got %q", *traceCap))
		}
		ringCap = caps[0]
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		MaxActive:    *maxActive,
		MaxTasks:     *maxTasks,
		TraceCap:     ringCap,
		SnapshotPath: *storePath,
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}

	// The optional warm-up sweep primes the shared store before traffic
	// arrives: every grid its users later POST that overlaps these axes
	// is served from memo.
	if !specFlags.Empty() {
		spec, err := specFlags.Spec()
		if err != nil {
			fatal(err)
		}
		runner, err := campaign.NewRunnerWith(spec, srv.Store())
		if err != nil {
			fatal(err)
		}
		jobs := *warmJobs
		if jobs <= 0 {
			jobs = *workers
		}
		start := time.Now()
		rep := runner.Run(jobs)
		fmt.Fprintf(os.Stderr, "sweepd: warm-up %d points, baselines simulated=%d, %s\n",
			len(rep.Results), runner.BaselineRuns(), time.Since(start).Round(time.Millisecond))
	}

	// Bind before announcing so scripts (and the e2e tests) can watch
	// stderr for the live address — including a kernel-assigned :0 port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "sweepd: serving on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining\n", got)
	}
	// Close the fabric first: admission flips to 503, live sweeps cancel
	// and finalize (so streaming subscribers reach end-of-stream), the
	// checkpoint is written — then the HTTP side drains cleanly.
	closeErr := srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if closeErr != nil {
		fatal(closeErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(1)
}
