package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The e2e contract: a campaign POSTed to the sweepd binary produces the
// same bytes the sweep binary emits for the same spec file. Both real
// binaries are built once here.
var (
	sweepdBin string
	sweepBin  string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sweepd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	sweepdBin = filepath.Join(dir, "sweepd")
	sweepBin = filepath.Join(dir, "sweep")
	for bin, pkg := range map[string]string{sweepdBin: ".", sweepBin: "../sweep"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", pkg, err, out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// startDaemon launches sweepd on an ephemeral port and returns its base
// URL once the binary announces it. The daemon is killed with the test.
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(sweepdBin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "sweepd: serving on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("no serving address on stderr (scan err %v)", sc.Err())
	}
	go func() { // drain so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	return cmd, base
}

func postSpec(t *testing.T, base, specJSON string) string {
	t.Helper()
	resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("no sweep id in %s (err %v)", body, err)
	}
	return st.ID
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

const e2eSpec = `{"engines":["aegis","xom","gi"],"workloads":["sequential"],"refs":[2000]}`

func TestServerReportMatchesCLIByteForByte(t *testing.T) {
	_, base := startDaemon(t)

	// Server side: POST, drain the live NDJSON stream, fetch the report.
	id := postSpec(t, base, e2eSpec)
	stream := get(t, base+"/sweeps/"+id+"/results")
	rows := strings.Split(strings.TrimSuffix(stream, "\n"), "\n")
	if len(rows) != 3 {
		t.Fatalf("streamed %d rows, want 3:\n%s", len(rows), stream)
	}
	for _, row := range rows {
		var res struct {
			Engine string `json:"engine"`
			Err    string `json:"err"`
		}
		if err := json.Unmarshal([]byte(row), &res); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", row, err)
		}
		if res.Err != "" {
			t.Fatalf("row failed: %s", res.Err)
		}
	}

	// CLI side: the same spec via `sweep -spec`, same formats.
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(e2eSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"table", "csv", "json"} {
		var stdout, stderrBuf bytes.Buffer
		cli := exec.Command(sweepBin, "-spec", specPath, "-format", format, "-q")
		cli.Stdout, cli.Stderr = &stdout, &stderrBuf
		if err := cli.Run(); err != nil {
			t.Fatalf("sweep -spec: %v\n%s", err, stderrBuf.String())
		}
		server := get(t, base+"/sweeps/"+id+"/result?format="+format)
		if server != stdout.String() {
			t.Errorf("format %s: server and CLI reports differ\nserver:\n%s\nCLI:\n%s",
				format, server, stdout.String())
		}
	}
}

func TestOverlappingSweepsShareWork(t *testing.T) {
	_, base := startDaemon(t, "-workers", "2", "-max-active", "2")

	// Two POSTs of one grid: the second must be served from the shared
	// store, not resimulated.
	id1 := postSpec(t, base, e2eSpec)
	id2 := postSpec(t, base, e2eSpec)
	var reports [2]string
	for i, id := range []string{id1, id2} {
		get(t, base+"/sweeps/"+id+"/results") // blocks until done
		reports[i] = get(t, base+"/sweeps/"+id+"/result?format=csv")
	}
	if reports[0] != reports[1] {
		t.Error("overlapping sweeps returned different reports")
	}

	var snap struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/metrics")), &snap); err != nil {
		t.Fatal(err)
	}
	if hits := snap.Gauges["serve.store_result_hits"]; hits == 0 {
		t.Errorf("no shared-memo hits across overlapping sweeps: %v", snap.Gauges)
	}
	if runs := snap.Gauges["serve.store_result_runs"]; runs != 3 {
		t.Errorf("store simulated %d points for two identical 3-point sweeps, want 3", runs)
	}
}

func TestGracefulShutdownWritesCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "store.json")
	cmd, base := startDaemon(t, "-store", ckpt)

	id := postSpec(t, base, `{"engines":["xom"],"workloads":["sequential"],"refs":[1000]}`)
	get(t, base+"/sweeps/"+id+"/results")

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after shutdown: %v", err)
	}
	var snap struct {
		Version int                        `json:"version"`
		Results map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("checkpoint is not JSON: %v", err)
	}
	if snap.Version != 1 || len(snap.Results) != 1 {
		t.Errorf("checkpoint version=%d results=%d, want 1 and 1", snap.Version, len(snap.Results))
	}

	// A restarted daemon warm-starts from the checkpoint: the same grid
	// is pure memo hits, zero new simulations.
	_, base2 := startDaemon(t, "-store", ckpt)
	id2 := postSpec(t, base2, `{"engines":["xom"],"workloads":["sequential"],"refs":[1000]}`)
	get(t, base2+"/sweeps/"+id2+"/results")
	var snap2 struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(get(t, base2+"/metrics")), &snap2); err != nil {
		t.Fatal(err)
	}
	if runs := snap2.Gauges["serve.store_result_runs"]; runs != 0 {
		t.Errorf("restarted daemon resimulated %d points, want 0", runs)
	}
}

func TestWarmupAxesPrimeTheStore(t *testing.T) {
	// Grid axis flags run a warm-up sweep before serving: the first POST
	// of an overlapping grid is served from memo.
	_, base := startDaemon(t, "-engines", "aegis", "-workloads", "sequential", "-refs", "1500")
	id := postSpec(t, base, `{"engines":["aegis"],"workloads":["sequential"],"refs":[1500]}`)
	get(t, base+"/sweeps/"+id+"/results")
	var st struct {
		MemoHits uint64 `json:"memo_hits"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/sweeps/"+id)), &st); err != nil {
		t.Fatal(err)
	}
	if st.MemoHits != 1 {
		t.Errorf("warmed POST memo hits = %d, want 1", st.MemoHits)
	}
}

func TestBadFlagAndBadSpecExitNonzero(t *testing.T) {
	out, err := exec.Command(sweepdBin, "-no-such-flag").CombinedOutput()
	if err == nil {
		t.Errorf("bad flag exited 0: %s", out)
	}
	out, err = exec.Command(sweepdBin, "-addr", "127.0.0.1:0", "-trace-cap", "nope").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "-trace-cap") {
		t.Errorf("bad -trace-cap: err=%v out=%s", err, out)
	}
	// A warm-up axis typo fails startup, not the first request.
	out, err = exec.Command(sweepdBin, "-addr", "127.0.0.1:0", "-engines", "warp-drive").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "warp-drive") {
		t.Errorf("bad warm-up engine: err=%v out=%s", err, out)
	}
}

func TestCancelEndpoint(t *testing.T) {
	_, base := startDaemon(t, "-workers", "1")
	// All engines × two workloads, long enough that DELETE lands mid-run.
	id := postSpec(t, base, `{"workloads":["sequential","firmware"],"refs":[50000]}`)

	resp, err := http.Get(base + "/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream ended before first row")
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/sweeps/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	// The stream terminates promptly rather than hanging on dead work.
	drained := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after DELETE")
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/sweeps/"+id)), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "canceled" {
		t.Errorf("state after DELETE = %q, want canceled", st.State)
	}
	if body := get(t, base+"/sweeps/"+id+"/result?format=csv"); !strings.Contains(body, "canceled") {
		t.Error("partial report carries no canceled placeholders")
	}
}
