// Command attacklab runs the attack suite of the survey's §2.3 threat
// model: bus probing of an unprotected system, ECB pattern analysis,
// Kuhn's cipher instruction search against the DS5002FP model, IV
// rewrite leakage, and the brute-force lifetime table.
//
// With -engine, it instead runs the three active attacks — spoofing,
// splicing, replay — against any registered engine, optionally paired
// with a registered authenticator, and prints the TamperOutcome table:
//
//	attacklab -engine xom            # confidentiality only: all accepted
//	attacklab -engine xom+flat-mac   # spoof/splice blocked, replay accepted
//	attacklab -engine aegis+tree     # all three fail-stop
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	only := flag.String("only", "", "run a single experiment: e4, e9, e13 or e15 (default: all)")
	engine := flag.String("engine", "", "tamper-test one engine[+authenticator] combination, e.g. xom, aegis+tree (authenticators: "+strings.Join(core.AuthKeys(), ", ")+")")
	flag.Parse()

	if *engine != "" {
		if *only != "" {
			// Same convention as sweep's -suite: conflicting modes are
			// an error, not a silent preference.
			fmt.Fprintln(os.Stderr, "attacklab: -engine runs the tamper table only; drop -only")
			os.Exit(1)
		}
		tbl, err := core.TamperTable(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		return
	}

	type step struct {
		key string
		run func() (*core.Table, error)
	}
	steps := []step{
		{"e4", core.E4ECBLeakage},
		{"e9", core.E9Kuhn},
		{"e13", core.E13BruteForce},
		{"e15", core.E15Best},
	}
	ran := 0
	for _, s := range steps {
		if *only != "" && *only != s.key {
			continue
		}
		tbl, err := s.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "attacklab: unknown experiment %q (want e4, e9, e13 or e15)\n", *only)
		os.Exit(1)
	}
}
