// Command attacklab runs the attack suite of the survey's §2.3 threat
// model: bus probing of an unprotected system, ECB pattern analysis,
// Kuhn's cipher instruction search against the DS5002FP model, IV
// rewrite leakage, and the brute-force lifetime table.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	only := flag.String("only", "", "run a single experiment: e4, e9, e13 or e15 (default: all)")
	flag.Parse()

	type step struct {
		key string
		run func() (*core.Table, error)
	}
	steps := []step{
		{"e4", core.E4ECBLeakage},
		{"e9", core.E9Kuhn},
		{"e13", core.E13BruteForce},
		{"e15", core.E15Best},
	}
	ran := 0
	for _, s := range steps {
		if *only != "" && *only != s.key {
			continue
		}
		tbl, err := s.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "attacklab: unknown experiment %q (want e4, e9, e13 or e15)\n", *only)
		os.Exit(1)
	}
}
