// Command sweep runs a batch experiment campaign: it expands a grid of
// engines × workloads × cache hierarchies × EDU placements × bus widths
// × trace lengths, simulates every point on a bounded worker pool, and
// emits per-point results plus a ranked per-engine summary.
//
// Grid axes are comma-separated lists; empty axes take defaults (all
// engines, all workloads, the reference geometry). Integer axes accept
// K/M suffixes. Examples:
//
//	sweep -jobs 8
//	sweep -engines aegis,xom,gi -workloads sequential,pointer-chase
//	sweep -cache 4K,16K,64K -line 16,32,64 -refs 30000 -format csv
//	sweep -l2 0,64K,256K -engines aegis               # hierarchy axis
//	sweep -l2 64K -placement l1-l2,l2-dram            # Fig. 7 placement sweep
//	sweep -authtree none,tree,ctree -engines xom      # authentication axis
//	sweep -authtree tree -attack 1,4,16 -format csv   # active-adversary sweep
//	sweep -suite -jobs 4            # run the E1-E22 suite instead
//	sweep -jobs 8 -progress         # live refs/sec + ETA on stderr
//	sweep -progress-json 2>prog.ndjson                # machine-readable progress
//	sweep -pprof localhost:6060     # net/http/pprof + /metrics + /trace snapshots
//	sweep -format json -o results.json                # write results to a file
//	sweep -spec grid.json -format csv                 # grid from a JSON spec file
//	                                                  # (the exact sweepd POST payload)
//	sweep -trace out.json           # flight-recorder trace (open in Perfetto)
//	sweep -trace out.csv -trace-cap 1M                # CSV export, bigger rings
//
// Output is deterministic: a -jobs 8 run emits bytes identical to a
// -jobs 1 run (per-task RNG sharding; see internal/campaign), with or
// without -progress — progress lines go to stderr, never stdout.
//
// Workloads are streamed, not materialized: each task's references are
// generated on the fly from its derived seed, so memory is bounded by
// the simulated system state (cache-sized shadow plus touched DRAM
// pages — the working set), independent of trace length: a
// 100M-reference sweep (-refs 100000000) runs in constant memory.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

func main() {
	specFlags := campaign.RegisterSpecFlags(flag.CommandLine)
	specPath := flag.String("spec", "", "read the grid spec from this JSON file (the exact payload sweepd's POST /sweeps accepts) instead of grid axis flags")
	jobs := flag.Int("jobs", campaign.DefaultJobs(), "worker pool size")
	format := flag.String("format", "table", "output format: table, csv or json")
	suite := flag.Bool("suite", false, "run the E1-E22 experiment suite through the pool instead of a grid")
	experiments := flag.String("experiments", "", "experiment ids for -suite, e.g. E1,E6,E17 (default: all)")
	suiteRefs := flag.Int("suite-refs", core.DefaultRefs, "trace length for -suite experiments")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	progress := flag.Bool("progress", false, "stream live progress lines (refs/sec, ETA) to stderr; stdout is untouched")
	progressJSON := flag.Bool("progress-json", false, "emit -progress lines as JSON objects")
	progressInterval := flag.Duration("progress-interval", time.Second, "period between -progress lines")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics + /trace JSON snapshots on this address (e.g. localhost:6060)")
	outPath := flag.String("o", "", "write results to this file instead of stdout")
	tracePath := flag.String("trace", "", "record a flight-recorder trace and write it here (.csv = CSV, else Chrome trace_event JSON for Perfetto)")
	traceCap := flag.String("trace-cap", "", fmt.Sprintf("per-task trace ring capacity in events, K/M suffixes ok (default: %d)", campaign.DefaultTraceCap))
	flag.Parse()

	if *suite {
		// Suite mode prints experiment tables: the grid axes and the
		// structured emitters do not apply, and silently ignoring them
		// would mislead scripted callers.
		if !specFlags.Empty() || *specPath != "" {
			fatal(fmt.Errorf("-suite ignores grid axes; drop -engines/-workloads/-refs/-cache/-l2/-placement/-line/-bus/-authtree/-attack/-spec (use -experiments and -suite-refs)"))
		}
		if *format != "table" {
			fatal(fmt.Errorf("-suite emits experiment tables only; -format %s is not supported", *format))
		}
		if *progress || *progressJSON || *pprofAddr != "" || *outPath != "" || *tracePath != "" || *traceCap != "" {
			fatal(fmt.Errorf("-suite does not support -progress/-progress-json/-pprof/-o/-trace/-trace-cap; run a grid sweep for live observability"))
		}
		start := time.Now()
		tables, err := campaign.RunSuite(campaign.ParseList(*experiments), *suiteRefs, *jobs)
		for _, t := range tables {
			fmt.Println(t)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweep: %d experiments, jobs=%d, %s\n",
				len(tables), *jobs, time.Since(start).Round(time.Millisecond))
		}
		return
	}

	// The grid comes from one place: either the shared axis flags or a
	// -spec file carrying the exact JSON payload the sweepd service
	// accepts — so a campaign is portable between CLI and service runs.
	var spec campaign.Spec
	var err error
	if *specPath != "" {
		if !specFlags.Empty() {
			fatal(fmt.Errorf("-spec replaces the grid axis flags; drop -engines/-workloads/-refs/-cache/-l2/-placement/-line/-bus/-authtree/-attack"))
		}
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			fatal(ferr)
		}
		spec, err = campaign.ParseSpecJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else if spec, err = specFlags.Spec(); err != nil {
		fatal(err)
	}

	if !slices.Contains(campaign.Formats, *format) {
		fatal(fmt.Errorf("unknown format %q (want %s)", *format, strings.Join(campaign.Formats, ", ")))
	}
	runner, err := campaign.NewRunner(spec)
	if err != nil {
		fatal(err)
	}

	// Observability is opt-in and stderr/HTTP-only: the result stream on
	// stdout (or -o) stays byte-identical with or without it.
	var reg *obs.Registry
	if *progress || *progressJSON || *pprofAddr != "" {
		reg = obs.NewRegistry()
		runner.Observe(campaign.NewMetrics(reg))
	}
	// -trace-cap is validated even when no tracer is armed, matching
	// the other flags: a malformed value always exits before the run.
	ringCap := 0
	if *traceCap != "" {
		caps, err := campaign.ParseIntList(*traceCap)
		if err != nil || len(caps) != 1 || caps[0] <= 0 {
			fatal(fmt.Errorf("-trace-cap wants one positive event count, got %q", *traceCap))
		}
		ringCap = caps[0]
	}
	var tracer *campaign.Tracer
	if *tracePath != "" || *pprofAddr != "" {
		tracer = &campaign.Tracer{Cap: ringCap}
		runner.Trace(tracer)
	}
	if *pprofAddr != "" {
		serveDebug(*pprofAddr, reg, tracer)
	}
	var prog *obs.Progress
	if *progress || *progressJSON {
		prog = obs.StartProgress(obs.ProgressConfig{
			W:        os.Stderr,
			Interval: *progressInterval,
			JSON:     *progressJSON,
			Unit:     "refs",
			Sample:   func() obs.ProgressSample { return sampleCampaign(reg) },
		})
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	start := time.Now()
	rep := runner.Run(*jobs)
	elapsed := time.Since(start)
	if prog != nil {
		prog.Stop()
	}
	if err := campaign.Emit(out, rep, *format); err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, campaign.TraceOf(rep)); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d points, jobs=%d, baselines simulated=%d cached-hits=%d, %s\n",
			len(rep.Results), *jobs, runner.BaselineRuns(), runner.BaselineHits(),
			elapsed.Round(time.Millisecond))
	}
}

// sampleCampaign reads the progress quantities from the registry's
// campaign.* and soc.* cells.
func sampleCampaign(reg *obs.Registry) obs.ProgressSample {
	var note string
	if busy := reg.Gauge("campaign.workers_busy").Load(); busy > 0 {
		note = fmt.Sprintf("busy %d", busy)
	}
	return obs.ProgressSample{
		Done:       reg.Counter("soc.refs").Load(),
		Total:      uint64(reg.Gauge("campaign.refs_planned").Load()),
		TasksDone:  reg.Counter("campaign.tasks_done").Load(),
		TasksTotal: uint64(reg.Gauge("campaign.tasks_total").Load()),
		Note:       note,
	}
}

// writeTrace dumps the canonical merged flight-recorder trace: CSV when
// the path says so, otherwise Chrome trace_event JSON Perfetto can load
// directly.
func writeTrace(path string, tr *rec.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = rec.WriteCSV(f, tr)
	} else {
		err = rec.WriteChrome(f, tr)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// serveDebug starts the diagnostics endpoint: net/http/pprof under
// /debug/pprof/, the registry's JSON snapshot at /metrics, and the
// live flight-recorder snapshot at /trace. The listener binds before
// the sweep starts (a bad address should fail fast), then serves for
// the life of the process.
func serveDebug(addr string, reg *obs.Registry, tracer *campaign.Tracer) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/trace", tracer.Handler())
	fmt.Fprintf(os.Stderr, "sweep: pprof+metrics+trace on http://%s\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "sweep: debug server:", err)
		}
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
