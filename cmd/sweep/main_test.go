package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/rec"
)

// sweepBin is the compiled CLI under test, built once in TestMain so
// every case exercises the real binary: exit codes, stream separation
// and flag handling, not just library calls.
var sweepBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sweep-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	sweepBin = filepath.Join(dir, "sweep")
	out, err := exec.Command("go", "build", "-o", sweepBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building sweep: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// run executes the binary and returns stdout, stderr and the exit code.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(sweepBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running sweep: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestBadFlagExitsNonzero(t *testing.T) {
	stdout, stderr, code := run(t, "-no-such-flag")
	if code == 0 {
		t.Error("bad flag exited 0")
	}
	if stdout != "" {
		t.Errorf("bad flag wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr does not name the bad flag: %q", stderr)
	}
}

func TestBadOutputPathExitsNonzero(t *testing.T) {
	stdout, stderr, code := run(t,
		"-engines", "aegis", "-workloads", "sequential", "-refs", "1000",
		"-o", filepath.Join(t.TempDir(), "missing-dir", "out.json"))
	if code == 0 {
		t.Error("unwritable -o path exited 0")
	}
	if stdout != "" {
		t.Errorf("error run wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "sweep:") {
		t.Errorf("stderr missing error prefix: %q", stderr)
	}
}

func TestSuiteRejectsObservabilityFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-suite", "-progress"},
		{"-suite", "-pprof", "localhost:0"},
		{"-suite", "-o", "x.json"},
		{"-suite", "-trace", "x.json"},
		{"-suite", "-trace-cap", "64K"},
	} {
		_, stderr, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v exited 0", args)
		}
		if !strings.Contains(stderr, "-suite does not support") {
			t.Errorf("%v stderr: %q", args, stderr)
		}
	}
}

// The determinism contract with live progress on: a -jobs 8 -progress
// run must emit stdout byte-identical to -jobs 1 -progress (progress is
// stderr-only), and the stream must carry at least the final line.
func TestProgressStdoutDeterministic(t *testing.T) {
	grid := []string{
		"-engines", "aegis,xom,gi", "-workloads", "sequential,pointer-chase",
		"-refs", "3000", "-format", "json", "-q",
		"-progress", "-progress-interval", "10ms",
	}
	out1, err1, code := run(t, append([]string{"-jobs", "1"}, grid...)...)
	if code != 0 {
		t.Fatalf("jobs=1 exited %d: %s", code, err1)
	}
	out8, err8, code := run(t, append([]string{"-jobs", "8"}, grid...)...)
	if code != 0 {
		t.Fatalf("jobs=8 exited %d: %s", code, err8)
	}
	if out1 != out8 {
		t.Error("-jobs 8 -progress stdout differs from -jobs 1 -progress")
	}
	for name, se := range map[string]string{"jobs=1": err1, "jobs=8": err8} {
		if !strings.Contains(se, "progress:") {
			t.Errorf("%s stderr has no progress lines: %q", name, se)
		}
	}
}

func TestProgressJSONLines(t *testing.T) {
	_, stderr, code := run(t,
		"-engines", "aegis", "-workloads", "sequential", "-refs", "2000",
		"-progress-json", "-q")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	var sawFinal bool
	for _, line := range strings.Split(strings.TrimSpace(stderr), "\n") {
		var rec struct {
			Done  uint64 `json:"done"`
			Total uint64 `json:"total"`
			Unit  string `json:"unit"`
			Final bool   `json:"final"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON progress line %q: %v", line, err)
		}
		if rec.Final {
			sawFinal = true
			if rec.Done != rec.Total || rec.Done == 0 {
				t.Errorf("final line done=%d total=%d", rec.Done, rec.Total)
			}
			if rec.Unit != "refs" {
				t.Errorf("unit = %q", rec.Unit)
			}
		}
	}
	if !sawFinal {
		t.Error("no final progress line")
	}
}

// -pprof serves the live /metrics snapshot while the sweep runs.
func TestPprofMetricsEndpoint(t *testing.T) {
	cmd := exec.Command(sweepBin,
		"-engines", "aegis,xom,gi,gilmont", "-workloads", "sequential,streaming",
		"-refs", "2000000", "-jobs", "2", "-q", "-pprof", "127.0.0.1:0")
	cmd.Stdout = nil
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The debug server announces its bound address before the sweep runs.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		if _, ok := strings.CutPrefix(sc.Text(), "sweep: pprof+metrics+trace on "); ok {
			addr, _ = strings.CutPrefix(sc.Text(), "sweep: pprof+metrics+trace on ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("no debug-server address on stderr (scan err %v)", sc.Err())
	}
	go func() { // drain so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Counters["soc.refs"]; !ok {
		t.Errorf("snapshot has no soc.refs counter: %v", snap.Counters)
	}
	if _, ok := snap.Gauges["campaign.tasks_total"]; !ok {
		t.Errorf("snapshot has no campaign.tasks_total gauge: %v", snap.Gauges)
	}

	resp2, err := client.Get(addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp2.StatusCode)
	}

	// The live flight-recorder snapshot serves beside /metrics: whatever
	// has completed so far must decode as a valid Chrome trace.
	resp3, err := client.Get(addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	snapTrace, err := rec.DecodeChrome(resp3.Body)
	if err != nil {
		t.Fatalf("/trace does not decode: %v", err)
	}
	if err := rec.Validate(snapTrace); err != nil {
		t.Errorf("/trace snapshot invalid: %v", err)
	}
}

// -trace output is part of the determinism contract: the canonical
// merged trace of a -jobs 8 sweep is byte-identical to -jobs 1, it
// round-trips through the decoder, and the CSV variant picks its format
// from the suffix.
func TestTraceOutputDeterministicAndDecodable(t *testing.T) {
	dir := t.TempDir()
	grid := []string{
		"-engines", "aegis", "-workloads", "sequential", "-refs", "3000",
		"-authtree", "none,tree", "-attack", "16", "-format", "json", "-q",
	}
	traced := func(name string, jobs int) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		stdout, stderr, code := run(t, append([]string{"-jobs", fmt.Sprint(jobs), "-trace", path}, grid...)...)
		if code != 0 {
			t.Fatalf("jobs=%d exited %d: %s", jobs, code, stderr)
		}
		if stdout == "" {
			t.Fatalf("jobs=%d: no results on stdout", jobs)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	j1 := traced("j1.json", 1)
	j8 := traced("j8.json", 8)
	if !bytes.Equal(j1, j8) {
		t.Error("-trace output differs between -jobs 1 and -jobs 8")
	}
	if !json.Valid(j1) {
		t.Fatal("-trace output is not valid JSON")
	}
	tr, err := rec.DecodeChrome(bytes.NewReader(j1))
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if err := rec.Validate(tr); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	if len(tr.Streams) != 2 {
		t.Errorf("trace has %d streams, want one per task (2)", len(tr.Streams))
	}

	csvPath := filepath.Join(dir, "out.csv")
	_, stderr, code := run(t, append([]string{"-trace", csvPath, "-trace-cap", "1K"}, grid...)...)
	if code != 0 {
		t.Fatalf("csv trace run exited %d: %s", code, stderr)
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(csvData, []byte("track,seq,kind,cycle,ref,addr,level,flags,arg\n")) {
		t.Errorf("csv trace missing header: %.80q", csvData)
	}
}

// -spec reads the exact JSON payload sweepd accepts, and must be
// interchangeable with the axis flags: same grid, same bytes.
func TestSpecFileMatchesAxisFlags(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(specPath, []byte(
		`{"engines":["aegis","xom"],"workloads":["sequential"],"refs":[2000],"cache_sizes":[4096]}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	fromSpec, stderr, code := run(t, "-spec", specPath, "-format", "csv", "-q")
	if code != 0 {
		t.Fatalf("-spec exited %d: %s", code, stderr)
	}
	fromFlags, stderr, code := run(t,
		"-engines", "aegis,xom", "-workloads", "sequential", "-refs", "2000",
		"-cache", "4K", "-format", "csv", "-q")
	if code != 0 {
		t.Fatalf("axis flags exited %d: %s", code, stderr)
	}
	if fromSpec != fromFlags {
		t.Errorf("-spec output differs from axis flags\nspec:\n%s\nflags:\n%s", fromSpec, fromFlags)
	}
}

func TestSpecFileErrors(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(specPath, []byte(`{"engines":["aegis"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Mixing -spec with axis flags is ambiguous, not merged.
	stdout, stderr, code := run(t, "-spec", specPath, "-engines", "xom")
	if code == 0 || stdout != "" || !strings.Contains(stderr, "-spec replaces") {
		t.Errorf("-spec + axis flags: code=%d stdout=%q stderr=%q", code, stdout, stderr)
	}
	// -suite rejects -spec like any other grid input.
	_, stderr, code = run(t, "-suite", "-spec", specPath)
	if code == 0 || !strings.Contains(stderr, "-suite ignores grid axes") {
		t.Errorf("-suite -spec: code=%d stderr=%q", code, stderr)
	}
	// Missing and malformed files fail before any simulation.
	_, stderr, code = run(t, "-spec", filepath.Join(t.TempDir(), "absent.json"))
	if code == 0 || !strings.Contains(stderr, "sweep:") {
		t.Errorf("missing spec file: code=%d stderr=%q", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"engins":["aegis"]}`), 0o644)
	_, stderr, code = run(t, "-spec", bad)
	if code == 0 || !strings.Contains(stderr, "unknown field") {
		t.Errorf("typoed spec field: code=%d stderr=%q", code, stderr)
	}
}

func TestBadTraceCapExitsNonzero(t *testing.T) {
	for _, bad := range []string{"0", "-5", "4,8", "nope"} {
		stdout, stderr, code := run(t,
			"-engines", "aegis", "-workloads", "sequential", "-refs", "1000",
			"-trace", filepath.Join(t.TempDir(), "t.json"), "-trace-cap", bad)
		if code == 0 {
			t.Errorf("-trace-cap %q exited 0", bad)
		}
		if stdout != "" {
			t.Errorf("-trace-cap %q wrote stdout: %q", bad, stdout)
		}
		if !strings.Contains(stderr, "-trace-cap") {
			t.Errorf("-trace-cap %q stderr: %q", bad, stderr)
		}
		// A malformed value is rejected even with no tracer armed.
		_, stderr, code = run(t,
			"-engines", "aegis", "-workloads", "sequential", "-refs", "1000",
			"-trace-cap", bad)
		if code == 0 || !strings.Contains(stderr, "-trace-cap") {
			t.Errorf("-trace-cap %q without -trace: code=%d stderr=%q", bad, code, stderr)
		}
	}
}
