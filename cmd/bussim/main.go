// Command bussim runs one bus-encryption configuration against one
// workload on the simulated SoC and reports the cycle accounting
// against the plaintext baseline. The workload is consumed as a stream:
// references are generated on the fly, so memory stays constant however
// long the trace — -refs 100000000 is bounded by time, not RAM.
//
//	bussim -engine aegis -workload pointer-chase -refs 100000
//	bussim -engine gilmont -workload code-only -jump 0.02 -codesize 8192
//	bussim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

func main() {
	var (
		engineKey = flag.String("engine", "aegis", "surveyed engine key (see -list)")
		workload  = flag.String("workload", "sequential", "workload generator name")
		refs      = flag.Int("refs", 100000, "trace length")
		jump      = flag.Float64("jump", 0.03, "jump rate (code workloads)")
		writes    = flag.Float64("writes", 0.3, "write fraction (data workloads)")
		loads     = flag.Float64("loads", 0.35, "data-access fraction")
		locality  = flag.Float64("locality", 0.7, "data locality")
		codeSize  = flag.Uint64("codesize", 1<<20, "code footprint in bytes")
		seed      = flag.Int64("seed", 1, "trace seed")
		list      = flag.Bool("list", false, "list engines and workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("engines:")
		for _, e := range core.Survey() {
			fmt.Printf("  %-8s %s (%s, %s)\n", e.Key, e.Name, e.Cipher, e.Origin)
		}
		fmt.Println("workloads:")
		var names []string
		for n := range trace.Sources {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	mkSource, ok := trace.Sources[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "bussim: unknown workload %q (try -list)\n", *workload)
		os.Exit(1)
	}
	src := mkSource(trace.Config{
		Refs: *refs, Seed: *seed, JumpRate: *jump,
		WriteFraction: *writes, LoadFraction: *loads, Locality: *locality,
		CodeSize: *codeSize,
	})

	entry, err := core.Entry(*engineKey)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bussim:", err)
		os.Exit(1)
	}
	eng, err := entry.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bussim:", err)
		os.Exit(1)
	}

	base, with, err := soc.Compare(soc.DefaultConfig(), eng, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bussim:", err)
		os.Exit(1)
	}

	fmt.Printf("engine     : %s (%s, %s)\n", entry.Name, entry.Cipher, entry.ModeDesc)
	fmt.Printf("area       : %d gate equivalents\n", eng.Gates())
	fmt.Printf("workload   : %s (%d refs, %d instructions)\n", src.Label(), with.Refs, with.Instructions)
	fmt.Printf("baseline   : %d cycles (CPI %.2f)\n", base.Cycles, base.CPI())
	fmt.Printf("with engine: %d cycles (CPI %.2f)\n", with.Cycles, with.CPI())
	fmt.Printf("overhead   : %.2f%%\n", 100*with.OverheadVs(base))
	fmt.Printf("engine stalls: %d cycles (%.1f%% of total)\n",
		with.EngineStalls, 100*float64(with.EngineStalls)/float64(with.Cycles))
	fmt.Printf("cache      : %.2f%% miss rate, %d writebacks, %d flushed at end\n",
		100*with.Cache.MissRate(), with.Cache.Writebacks, with.FlushedLines)
	fmt.Printf("bus        : %d transactions, %d bytes\n", with.BusTxns, with.BusBytes)
	if with.RMWEvents > 0 {
		fmt.Printf("RMW events : %d (sub-block writes)\n", with.RMWEvents)
	}
}
