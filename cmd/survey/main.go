// Command survey prints the full experiment suite (E1-E22): the
// survey's comparison table, every quantitative claim reproduced on the
// simulated SoC, and the extension experiments. Experiments are
// submitted through the campaign scheduler, so -jobs N runs them on N
// workers (tables still print in suite order — each experiment is
// deterministic in isolation). Use -refs to trade accuracy for speed
// and -only to run a single experiment.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
)

func main() {
	refs := flag.Int("refs", core.DefaultRefs, "trace length per simulation")
	only := flag.String("only", "", "run a single experiment by id (e.g. E6, e17)")
	jobs := flag.Int("jobs", campaign.DefaultJobs(), "experiment scheduler worker count")
	flag.Parse()

	var ids []string
	if *only != "" {
		if _, ok := core.ExperimentByID(*only); !ok {
			fmt.Fprintf(os.Stderr, "survey: unknown experiment %q (want %s)\n", *only, core.ExperimentIDRange())
			os.Exit(1)
		}
		ids = []string{*only}
	}

	tables, err := campaign.RunSuite(ids, *refs, *jobs)
	for _, t := range tables {
		fmt.Println(t)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "survey:", err)
		os.Exit(1)
	}
}
