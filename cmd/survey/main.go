// Command survey prints the full experiment suite (E1-E19): the
// survey's comparison table, every quantitative claim reproduced on the
// simulated SoC, and the extension experiments. Use -refs to trade
// accuracy for speed and -only to run a single experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	refs := flag.Int("refs", core.DefaultRefs, "trace length per simulation")
	only := flag.String("only", "", "run a single experiment by id (e.g. E6, e17)")
	flag.Parse()

	if *only != "" {
		want := strings.ToUpper(strings.TrimSpace(*only))
		runners := map[string]func() (*core.Table, error){
			"E1":  func() (*core.Table, error) { return core.E1SurveyTable(*refs) },
			"E2":  func() (*core.Table, error) { return core.E2StreamVsBlock(*refs) },
			"E3":  func() (*core.Table, error) { return core.E3WritePenalty(*refs) },
			"E4":  core.E4ECBLeakage,
			"E5":  func() (*core.Table, error) { return core.E5CBCRandomAccess(*refs) },
			"E6":  func() (*core.Table, error) { return core.E6Aegis(*refs) },
			"E7":  func() (*core.Table, error) { return core.E7XomPipeline(*refs) },
			"E8":  func() (*core.Table, error) { return core.E8Gilmont(*refs) },
			"E9":  core.E9Kuhn,
			"E10": func() (*core.Table, error) { return core.E10CodePack(*refs) },
			"E11": func() (*core.Table, error) { return core.E11CacheSide(*refs) },
			"E12": func() (*core.Table, error) { return core.E12CompressThenEncrypt(*refs) },
			"E13": core.E13BruteForce,
			"E14": core.E14KeyExchange,
			"E15": core.E15Best,
			"E16": func() (*core.Table, error) { return core.E16VlsiDma(*refs) },
			"E17": func() (*core.Table, error) { return core.E17Integrity(*refs) },
			"E18": func() (*core.Table, error) { return core.E18Ablations(*refs) },
			"E19": func() (*core.Table, error) { return core.E19KeyManagement(*refs) },
		}
		run, ok := runners[want]
		if !ok {
			fmt.Fprintf(os.Stderr, "survey: unknown experiment %q (want E1..E19)\n", *only)
			os.Exit(1)
		}
		tbl, err := run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "survey:", err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		return
	}

	tables, err := core.AllExperiments(*refs)
	for _, t := range tables {
		fmt.Println(t)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "survey:", err)
		os.Exit(1)
	}
}
