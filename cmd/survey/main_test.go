package main

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// runCLI builds and runs this command with args, returning stdout,
// stderr, and exit code — error-path contracts (stderr + nonzero
// exit) are only provable on the real binary.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	bin := t.TempDir() + "/cli"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatal(err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestErrorPathsToStderr(t *testing.T) {
	for _, tc := range [][]string{
		{"-no-such-flag"},
		{"-only", "E99"},
	} {
		stdout, stderr, code := runCLI(t, tc...)
		if code == 0 {
			t.Errorf("%v exited 0", tc)
		}
		if stdout != "" {
			t.Errorf("%v wrote error to stdout: %q", tc, stdout)
		}
		if stderr == "" {
			t.Errorf("%v produced no stderr diagnostics", tc)
		}
	}
}

func TestUnknownExperimentNamesRange(t *testing.T) {
	_, stderr, _ := runCLI(t, "-only", "E99")
	if !strings.Contains(stderr, "E99") {
		t.Errorf("stderr does not name the bad experiment: %q", stderr)
	}
}
